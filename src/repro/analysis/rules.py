"""The design-rule registry and the built-in rules.

Every rule is a function from an :class:`~repro.analysis.engine.AnalysisContext`
to an iterable of :class:`~repro.analysis.report.Finding`, registered under a
stable rule id with a default severity.  Rules are *vectorized where the
design is large*: the context exposes flat structural tensors (fanout
counts, per-gate input id matrices, level order) built once with the HOST
array backend, so a rule pass over a million-net design is a handful of
array ops, not a Python loop per net.

Built-in rules
--------------

=====================  ========  ====================================================
Rule id                Severity  Checks
=====================  ========  ====================================================
``undriven-input``     error     nets read by gate inputs with no driver
``multi-driven-net``   error     nets claimed as output by more than one driver
``unconnected-output`` error     declared primary outputs with no driver
``combinational-loop`` error     cycles through combinational gates (incl. self-loops)
``dangling-net``       warning   driven nets with no loads that are not outputs
``sdf-unknown-instance`` warning SDF ``CELL`` entries naming unknown instances
``sdf-coverage``       warning   cells with missing or partial ``IOPATH`` coverage
``negative-delay``     error     negative delay arcs (SDF or annotation tables)
``zero-delay``         warning   explicit zero-valued SDF ``IOPATH`` delays
``eow-overflow-risk``  error     delays + stimulus horizon reaching the EOW sentinel
``fanout-outlier``     info      nets with statistically extreme fanout
``constant-cone``      info      gates whose inputs are all tie-cell constants
``unreachable-cone``   info      gates whose output reaches no endpoint
``undriven-clock``     error     register clock pins whose net has no driver
``unregistered-feedback-loop`` error feedback cycles closed only by transparent latches
``latch-inferred``     warning   level-sensitive latches in the design
``reset-domain-mix``   warning   multiple reset nets, or one net used async and sync
=====================  ========  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Tuple, TYPE_CHECKING

from ..core.waveform import EOW
from ..core.xp import HOST
from ..netlist import PORT
from .report import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import AnalysisContext

RuleFunc = Callable[["AnalysisContext"], Iterable[Finding]]


@dataclass(frozen=True)
class RuleSpec:
    """One registered design rule."""

    rule_id: str
    severity: Severity
    title: str
    func: RuleFunc

    def finding(
        self,
        message: str,
        nets: Tuple[str, ...] = (),
        instances: Tuple[str, ...] = (),
        data: Dict[str, Any] | None = None,
        severity: Severity | None = None,
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=severity if severity is not None else self.severity,
            message=message,
            nets=nets,
            instances=instances,
            data=data or {},
        )


#: Registry of every known rule, in registration (= evaluation) order.
RULES: "Dict[str, RuleSpec]" = {}


def rule(rule_id: str, severity: Severity, title: str) -> Callable[[RuleFunc], RuleFunc]:
    """Register a design rule under ``rule_id`` with a default severity."""

    def decorator(func: RuleFunc) -> RuleFunc:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        RULES[rule_id] = RuleSpec(
            rule_id=rule_id, severity=severity, title=title, func=func
        )
        return func

    return decorator


def available_rules() -> Tuple[str, ...]:
    return tuple(RULES)


def get_rule(rule_id: str) -> RuleSpec:
    try:
        return RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown analysis rule {rule_id!r}; available: "
            f"{', '.join(RULES)}"
        ) from None


# ======================================================================
# Structural rules
# ======================================================================
@rule("undriven-input", Severity.ERROR, "gate inputs read undriven nets")
def _undriven_input(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["undriven-input"]
    sources = ctx.source_net_set
    instances = ctx.netlist.instances
    undriven = sorted(
        name
        for name, net in ctx.netlist.nets.items()
        if net.driver is None
        and name not in sources
        and any(
            i != PORT and not instances[i].is_sequential
            for i, _ in net.loads
        )
    )
    if undriven:
        yield spec.finding(
            f"{len(undriven)} net(s) are read by gate inputs but never driven",
            nets=tuple(undriven),
        )


@rule("multi-driven-net", Severity.ERROR, "nets with more than one driver")
def _multi_driven(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["multi-driven-net"]
    claims: Dict[str, List[str]] = {}
    for name in ctx.netlist.inputs:
        claims.setdefault(name, []).append("<port>")
    for inst in ctx.netlist.instances.values():
        claims.setdefault(
            inst.connections[inst.cell.output], []
        ).append(inst.name)
    # Only the (rare) violating nets need deterministic ordering; sorting
    # every net in the design dominated this rule's cost.
    for net_name in sorted(
        name for name, drivers in claims.items() if len(drivers) > 1
    ):
        drivers = claims[net_name]
        yield spec.finding(
            f"net {net_name!r} is driven by {len(drivers)} drivers",
            nets=(net_name,),
            instances=tuple(d for d in drivers if d != "<port>"),
            data={"drivers": drivers},
        )


@rule("unconnected-output", Severity.ERROR, "primary outputs with no driver")
def _unconnected_output(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["unconnected-output"]
    missing = tuple(
        name
        for name in ctx.netlist.outputs
        if ctx.netlist.nets[name].driver is None
    )
    if missing:
        yield spec.finding(
            f"{len(missing)} primary output(s) are never driven",
            nets=missing,
        )


@rule("combinational-loop", Severity.ERROR, "combinational feedback loops")
def _combinational_loop(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["combinational-loop"]
    members = ctx.loop_instances
    if members:
        yield spec.finding(
            f"combinational loop through {len(members)} gate(s)",
            instances=tuple(members),
            data={"self_loop": len(members) == 1},
        )


@rule("dangling-net", Severity.WARNING, "driven nets with no loads")
def _dangling_net(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["dangling-net"]
    outputs = set(ctx.netlist.outputs)
    dangling = sorted(
        name
        for name, net in ctx.netlist.nets.items()
        if net.driver is not None and not net.loads and name not in outputs
    )
    if dangling:
        yield spec.finding(
            f"{len(dangling)} driven net(s) have no loads",
            nets=tuple(dangling),
        )


@rule("fanout-outlier", Severity.INFO, "nets with statistically extreme fanout")
def _fanout_outlier(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["fanout-outlier"]
    hnp = HOST
    fanout = ctx.fanout
    if fanout.size < 4:
        return
    mean = float(fanout.mean())
    std = float(fanout.std())
    threshold = max(mean + 4.0 * std, 8.0)
    mask = fanout > threshold
    if not bool(hnp.any(mask)):
        return
    names = [ctx.net_names[i] for i in range(len(ctx.net_names)) if bool(mask[i])]
    values = [int(v) for v in fanout[mask]]
    order = sorted(range(len(names)), key=lambda i: -values[i])
    names = [names[i] for i in order]
    values = [values[i] for i in order]
    yield spec.finding(
        f"{len(names)} net(s) exceed the fanout outlier threshold "
        f"({threshold:.1f}; design mean {mean:.2f})",
        nets=tuple(names),
        data={"fanouts": dict(zip(names, values)), "threshold": threshold},
    )


# ======================================================================
# SDF / delay rules
# ======================================================================
@rule("sdf-unknown-instance", Severity.WARNING, "SDF entries naming unknown instances")
def _sdf_unknown_instance(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["sdf-unknown-instance"]
    if ctx.sdf is None:
        return
    unknown = sorted(
        {
            cell.instance
            for cell in ctx.sdf.cells
            if cell.instance and cell.instance not in ctx.netlist.instances
        }
    )
    if unknown:
        yield spec.finding(
            f"{len(unknown)} SDF CELL entr(ies) reference instances that do "
            f"not exist in the netlist",
            instances=tuple(unknown),
        )


@rule("sdf-coverage", Severity.WARNING, "cells with missing/partial IOPATH coverage")
def _sdf_coverage(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["sdf-coverage"]
    if ctx.sdf is None:
        return
    by_instance = {cell.instance: cell for cell in ctx.sdf.cells}
    missing: List[str] = []
    partial: Dict[str, List[str]] = {}
    for inst in ctx.netlist.combinational_instances():
        if inst.cell.num_inputs == 0:
            continue
        cell_entry = by_instance.get(inst.name)
        if cell_entry is None or not cell_entry.iopaths:
            missing.append(inst.name)
            continue
        covered = {path.input_pin for path in cell_entry.iopaths}
        gaps = [pin for pin in inst.cell.inputs if pin not in covered]
        if gaps:
            partial[inst.name] = gaps
    if missing:
        yield spec.finding(
            f"{len(missing)} combinational instance(s) have no SDF IOPATH "
            f"coverage at all",
            instances=tuple(sorted(missing)),
        )
    if partial:
        yield spec.finding(
            f"{len(partial)} instance(s) have partial SDF IOPATH coverage "
            f"(some input pins unannotated)",
            instances=tuple(sorted(partial)),
            data={"missing_pins": {k: list(v) for k, v in sorted(partial.items())}},
        )


@rule("negative-delay", Severity.ERROR, "negative delay arcs")
def _negative_delay(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["negative-delay"]
    hnp = HOST
    bad: Dict[str, float] = {}
    if ctx.sdf is not None:
        for cell in ctx.sdf.cells:
            for path in cell.iopaths:
                for value in (path.rise, path.fall):
                    if value is not None and value < 0:
                        key = cell.instance or cell.cell_type
                        bad[key] = min(bad.get(key, 0.0), float(value))
    if ctx.annotation is not None:
        for name, table in ctx.annotation.gate_tables.items():
            worst = 0.0
            for pin in table.pins:
                arr = table.table_for(pin)
                finite = arr[hnp.isfinite(arr)]
                if finite.size and float(finite.min()) < 0:
                    worst = min(worst, float(finite.min()))
            if worst < 0:
                bad[name] = min(bad.get(name, 0.0), worst)
    if bad:
        yield spec.finding(
            f"{len(bad)} instance(s) carry negative delay arcs "
            f"(worst {min(bad.values()):g})",
            instances=tuple(sorted(bad)),
            data={"worst_delays": dict(sorted(bad.items()))},
        )


@rule("zero-delay", Severity.WARNING, "explicit zero-valued SDF IOPATH delays")
def _zero_delay(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["zero-delay"]
    if ctx.sdf is None:
        return
    zero: List[str] = []
    for cell in ctx.sdf.cells:
        for path in cell.iopaths:
            if (path.rise is not None and path.rise == 0) or (
                path.fall is not None and path.fall == 0
            ):
                zero.append(cell.instance or cell.cell_type)
                break
    if zero:
        yield spec.finding(
            f"{len(zero)} instance(s) have explicit zero-valued IOPATH "
            f"delays (glitch filtering degenerates on zero-delay arcs)",
            instances=tuple(sorted(set(zero))),
        )


@rule("eow-overflow-risk", Severity.ERROR, "delays + horizon reaching the EOW sentinel")
def _eow_overflow_risk(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["eow-overflow-risk"]
    horizon = ctx.horizon
    if horizon is None:
        return
    estimated = ctx.estimated_path_delay
    if horizon + estimated >= EOW:
        yield spec.finding(
            f"stimulus horizon {horizon} plus estimated critical-path delay "
            f"{estimated} reaches the EOW sentinel ({EOW}); waveforms would "
            f"silently truncate",
            data={"horizon": horizon, "estimated_path_delay": estimated},
        )
    elif estimated >= EOW:
        yield spec.finding(
            f"estimated critical-path delay {estimated} alone reaches the "
            f"EOW sentinel ({EOW})",
            data={"estimated_path_delay": estimated},
        )


# ======================================================================
# Cone rules (need a levelizable design; skipped when loops exist)
# ======================================================================
@rule("constant-cone", Severity.INFO, "gates computing compile-time constants")
def _constant_cone(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["constant-cone"]
    constant = ctx.constant_gates
    if constant:
        yield spec.finding(
            f"{len(constant)} gate(s) have all-constant input cones "
            f"(outputs can never toggle)",
            instances=tuple(constant),
        )


@rule("unreachable-cone", Severity.INFO, "gates observable at no endpoint")
def _unreachable_cone(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["unreachable-cone"]
    unreachable = ctx.unreachable_gates
    if unreachable:
        yield spec.finding(
            f"{len(unreachable)} gate(s) reach no primary output or "
            f"sequential input (dead cones)",
            instances=tuple(unreachable),
        )


# ======================================================================
# Sequential rules (read the register crossing table)
# ======================================================================
@rule("undriven-clock", Severity.ERROR, "register clock pins with no driver")
def _undriven_clock(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["undriven-clock"]
    bad: Dict[str, List[str]] = {}
    nets = ctx.netlist.nets
    for crossing in ctx.register_crossings:
        clock_net = crossing.clock_net
        if clock_net is None:
            continue
        net = nets.get(clock_net)
        if net is None or net.driver is None:
            bad.setdefault(clock_net, []).append(crossing.instance)
    if bad:
        yield spec.finding(
            f"{sum(len(v) for v in bad.values())} register(s) are clocked "
            f"by net(s) with no driver (they can never capture)",
            nets=tuple(sorted(bad)),
            instances=tuple(
                name for insts in bad.values() for name in sorted(insts)
            ),
            data={"registers_by_clock": {k: sorted(v) for k, v in bad.items()}},
        )


@rule(
    "unregistered-feedback-loop",
    Severity.ERROR,
    "feedback cycles closed only by transparent latches",
)
def _unregistered_feedback_loop(ctx: "AnalysisContext") -> Iterator[Finding]:
    """Cycles that pass through level-sensitive latches but no edge-
    triggered register.

    Edge-triggered flops legitimately close feedback (that is what a
    clocked design *is*), so they break the graph here; a latch is
    transparent while its gate is open, so a cycle closed only by latches
    behaves combinationally for part of every cycle and cannot be
    clock-stepped.  Pure combinational loops are ``combinational-loop``'s
    report, not this rule's.
    """
    spec = RULES["unregistered-feedback-loop"]
    latches = [c for c in ctx.register_crossings if c.is_latch]
    if not latches:
        return
    # Node set: combinational gates plus latches treated as transparent
    # (data and gate pins feed Q).  Flop Q nets count as resolved sources.
    nodes: List[Tuple[str, Tuple[str, ...], str]] = list(ctx.combinational_io)
    latch_names = set()
    for crossing in latches:
        latch_names.add(crossing.instance)
        inputs = tuple(
            net
            for net in (crossing.d_net, crossing.clock_net, crossing.enable_net)
            if net is not None
        )
        nodes.append((crossing.instance, inputs, crossing.q_net))
    netlist = ctx.netlist
    resolved = set(netlist.inputs)
    resolved.update(
        c.q_net for c in ctx.register_crossings if not c.is_latch
    )
    for _, input_nets, _ in nodes:
        for net_name in input_nets:
            net = netlist.nets.get(net_name)
            if net is None or net.driver is None:
                resolved.add(net_name)
    consumers: Dict[str, List[str]] = {}
    pending: Dict[str, int] = {}
    ready: List[str] = []
    output_of: Dict[str, str] = {}
    for name, input_nets, output_net in nodes:
        output_of[name] = output_net
        remaining = 0
        for net_name in input_nets:
            if net_name in resolved:
                continue
            remaining += 1
            consumers.setdefault(net_name, []).append(name)
        pending[name] = remaining
        if remaining == 0:
            ready.append(name)
    while ready:
        name = ready.pop()
        del pending[name]
        for consumer in consumers.get(output_of[name], ()):
            if consumer in pending:
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    ready.append(consumer)
    if not pending:
        return
    # Backward peel: drop nodes merely downstream of a cycle.
    remaining_set = set(pending)
    out_degree: Dict[str, int] = {name: 0 for name in remaining_set}
    feeds: Dict[str, List[str]] = {}
    for name in remaining_set:
        for consumer in consumers.get(output_of[name], ()):
            if consumer in remaining_set:
                out_degree[name] += 1
                feeds.setdefault(consumer, []).append(name)
    ready = [name for name, degree in out_degree.items() if degree == 0]
    while ready:
        name = ready.pop()
        remaining_set.discard(name)
        for producer in feeds.get(name, ()):
            if producer in remaining_set:
                out_degree[producer] -= 1
                if out_degree[producer] == 0:
                    ready.append(producer)
    on_cycle_latches = sorted(remaining_set & latch_names)
    if on_cycle_latches:
        yield spec.finding(
            f"feedback loop through {len(remaining_set)} element(s) is "
            f"closed only by {len(on_cycle_latches)} transparent latch(es); "
            f"no edge-triggered register breaks the cycle",
            instances=tuple(sorted(remaining_set)),
            data={"latches": on_cycle_latches},
        )


@rule("latch-inferred", Severity.WARNING, "level-sensitive latches present")
def _latch_inferred(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["latch-inferred"]
    latches = sorted(
        c.instance for c in ctx.register_crossings if c.is_latch
    )
    if latches:
        yield spec.finding(
            f"{len(latches)} level-sensitive latch(es) present; the clocked "
            f"update step (run_cycles) only supports edge-triggered "
            f"registers",
            instances=tuple(latches),
        )


@rule(
    "reset-domain-mix",
    Severity.WARNING,
    "multiple reset nets, or one net used async and sync",
)
def _reset_domain_mix(ctx: "AnalysisContext") -> Iterator[Finding]:
    spec = RULES["reset-domain-mix"]
    kinds: Dict[str, set] = {}
    users: Dict[str, List[str]] = {}
    for crossing in ctx.register_crossings:
        if crossing.reset_net is None:
            continue
        kind = "async" if crossing.reset_async else "sync"
        kinds.setdefault(crossing.reset_net, set()).add(kind)
        users.setdefault(crossing.reset_net, []).append(crossing.instance)
    if len(kinds) > 1:
        yield spec.finding(
            f"registers are reset by {len(kinds)} distinct nets "
            f"{sorted(kinds)}; mixed reset domains need explicit "
            f"synchronization",
            nets=tuple(sorted(kinds)),
            data={
                "registers_by_reset": {k: sorted(v) for k, v in users.items()}
            },
        )
    mixed = sorted(net for net, k in kinds.items() if len(k) > 1)
    if mixed:
        yield spec.finding(
            f"reset net(s) {mixed} drive both async and sync reset pins; "
            f"deassertion timing differs between the two styles",
            nets=tuple(mixed),
            data={
                "mixed_nets": {
                    net: sorted(kinds[net]) for net in mixed
                }
            },
        )
