"""Structured results of design-rule analysis.

A :class:`Finding` is one violation of one rule, naming the nets and/or
instances involved; an :class:`AnalysisReport` collects every finding of
one analysis run together with the rule set that produced it.  Reports are
plain data — JSON-serializable via :meth:`AnalysisReport.to_dict` /
:meth:`AnalysisReport.to_json` — so they can be cached alongside compiled
designs, attached to serving rejections, and emitted by the CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple


class Severity(str, Enum):
    """Severity of a finding; orders ``error > warning > info``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    def __lt__(self, other: object) -> bool:  # pragma: no cover - ordering aid
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``nets`` / ``instances`` name the design objects involved (possibly
    empty for design-wide findings); ``data`` carries rule-specific
    structured detail (fanout values, missing pins, delay values, ...).
    """

    rule_id: str
    severity: Severity
    message: str
    nets: Tuple[str, ...] = ()
    instances: Tuple[str, ...] = ()
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "nets": list(self.nets),
            "instances": list(self.instances),
            "data": dict(self.data),
        }


@dataclass
class AnalysisReport:
    """All findings of one design-rule analysis run.

    ``rules_run`` records which rules executed (so an empty findings list
    is distinguishable from a rule that never ran); ``fingerprint`` is the
    content fingerprint the report is cached under (empty when uncached);
    ``analysis_seconds`` is the wall time the rule evaluation took.
    """

    design: str
    findings: List[Finding] = field(default_factory=list)
    rules_run: Tuple[str, ...] = ()
    fingerprint: str = ""
    analysis_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.INFO]

    @property
    def has_errors(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)

    @property
    def is_clean(self) -> bool:
        """No findings of any severity."""
        return not self.findings

    def findings_for(self, rule_id: str) -> List[Finding]:
        return [f for f in self.findings if f.rule_id == rule_id]

    def rule_ids(self) -> Tuple[str, ...]:
        return tuple(sorted({f.rule_id for f in self.findings}))

    def severity_counts(self) -> Dict[str, int]:
        counts = {"error": 0, "warning": 0, "info": 0}
        for finding in self.findings:
            counts[finding.severity.value] += 1
        return counts

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "design": self.design,
            "fingerprint": self.fingerprint,
            "rules_run": list(self.rules_run),
            "severity_counts": self.severity_counts(),
            "analysis_seconds": self.analysis_seconds,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AnalysisReport":
        findings = [
            Finding(
                rule_id=entry["rule_id"],
                severity=Severity(entry["severity"]),
                message=entry["message"],
                nets=tuple(entry.get("nets", ())),
                instances=tuple(entry.get("instances", ())),
                data=dict(entry.get("data", {})),
            )
            for entry in payload.get("findings", ())
        ]
        return cls(
            design=str(payload.get("design", "")),
            findings=findings,
            rules_run=tuple(payload.get("rules_run", ())),
            fingerprint=str(payload.get("fingerprint", "")),
            analysis_seconds=float(payload.get("analysis_seconds", 0.0)),
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line human summary (the CLI's closing line)."""
        counts = self.severity_counts()
        return (
            f"{self.design}: {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info "
            f"({len(self.rules_run)} rules)"
        )

    def format_findings(self, max_names: int = 6) -> str:
        """Multi-line human rendering, most severe first."""
        lines: List[str] = []
        ordered = sorted(
            self.findings, key=lambda f: (-f.severity.rank, f.rule_id)
        )
        for finding in ordered:
            subjects: Sequence[str] = finding.nets or finding.instances
            suffix = ""
            if subjects:
                shown = ", ".join(list(subjects)[:max_names])
                if len(subjects) > max_names:
                    shown += f", ... (+{len(subjects) - max_names})"
                suffix = f" [{shown}]"
            lines.append(
                f"{finding.severity.value.upper():7s} {finding.rule_id}: "
                f"{finding.message}{suffix}"
            )
        return "\n".join(lines)
