"""Command-line design-rule analysis.

Usage::

    python -m repro.analysis <netlist.v> [design.sdf] [options]
    python -m repro.analysis --demo [options]

Reads a gate-level Verilog netlist (and optionally an SDF delay file),
evaluates every registered design rule, prints the findings, and exits 0
when the design is simulatable (no error-severity findings), 1 otherwise.
``--strict`` also fails on warnings; ``--json`` writes the structured
report; ``--demo`` analyzes a built-in benchmark design (used by the CI
smoke step, which has no netlist files checked in).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..netlist import Netlist, read_verilog
from ..sdf.annotate import annotation_from_sdf
from ..sdf.parser import read_sdf
from .engine import analyze_design
from .rules import RULES, available_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Design-rule analysis over a gate-level netlist (+ SDF).",
    )
    parser.add_argument("netlist", nargs="?", help="gate-level Verilog netlist file")
    parser.add_argument("sdf", nargs="?", help="optional SDF delay file")
    parser.add_argument(
        "--demo",
        action="store_true",
        help="analyze a built-in benchmark design instead of reading files",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the structured report as JSON"
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        metavar="TIME",
        help="stimulus horizon in time units (arms the EOW-overflow rule)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )
    return parser


def _demo_netlist() -> Netlist:
    from ..bench.designs import carry_select_adder

    return carry_select_adder(bits=16)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, spec in RULES.items():
            print(f"{spec.severity.value:7s}  {rule_id:22s}  {spec.title}")
        return 0

    if args.demo:
        netlist = _demo_netlist()
        sdf = None
    else:
        if not args.netlist:
            parser.error("a netlist file (or --demo) is required")
        try:
            netlist = read_verilog(args.netlist)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read netlist {args.netlist!r}: {exc}",
                  file=sys.stderr)
            return 2
        sdf = None
        if args.sdf:
            try:
                sdf = read_sdf(args.sdf)
            except (OSError, ValueError) as exc:
                print(f"error: cannot read SDF {args.sdf!r}: {exc}",
                      file=sys.stderr)
                return 2

    annotation = None
    if sdf is not None:
        # Lenient annotation: unknown instances/pins are the analysis
        # rules' job to report, not a reason to abort the analysis.
        annotation = annotation_from_sdf(netlist, sdf, strict=False)

    rules = None
    if args.rules:
        rules = [rule_id.strip() for rule_id in args.rules.split(",") if rule_id.strip()]
        unknown = [rule_id for rule_id in rules if rule_id not in RULES]
        if unknown:
            print(
                f"error: unknown rule id(s) {', '.join(unknown)}; "
                f"available: {', '.join(available_rules())}",
                file=sys.stderr,
            )
            return 2

    report = analyze_design(
        netlist, annotation=annotation, sdf=sdf, horizon=args.horizon, rules=rules
    )

    if not args.quiet and report.findings:
        print(report.format_findings())
    print(report.summary())

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        if not args.quiet:
            print(f"report written to {args.json}")

    if report.has_errors:
        return 1
    if args.strict and report.warnings:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pipe (e.g. ``| head``) closed early; exit quietly the
        # way POSIX line tools do instead of tracebacking.
        sys.exit(0)
