"""``repro.analysis``: design-rule analysis over netlists and SDF.

The elaboration-time checks a commercial flow front-loads, run over our
levelized netlist + delay-annotation structures and reported as structured,
JSON-serializable findings::

    from repro.analysis import analyze_design

    report = analyze_design(netlist, annotation, sdf=parsed_sdf, horizon=100_000)
    if report.has_errors:
        print(report.format_findings())

Reports are cached process-wide by content fingerprint (the compile cache's
fingerprints), wired into every backend's ``prepare()`` via
``SimConfig(analysis="strict"|"warn"|"off")``, enforced at the serving front
door by :class:`repro.serve.SimulationService`, and exposed as a CLI::

    python -m repro.analysis design.v [design.sdf] [--json report.json]
"""

from .engine import (
    AnalysisContext,
    AnalysisWarning,
    DesignAnalysisError,
    analysis_cache_info,
    analysis_key,
    analyze_design,
    analyze_for_prepare,
    clear_analysis_cache,
    set_analysis_cache_capacity,
)
from .report import AnalysisReport, Finding, Severity
from .rules import RULES, RuleSpec, available_rules, get_rule, rule

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "AnalysisWarning",
    "DesignAnalysisError",
    "Finding",
    "RULES",
    "RuleSpec",
    "Severity",
    "analysis_cache_info",
    "analysis_key",
    "analyze_design",
    "analyze_for_prepare",
    "available_rules",
    "clear_analysis_cache",
    "get_rule",
    "rule",
    "set_analysis_cache_capacity",
]
