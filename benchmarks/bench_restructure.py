"""Microbenchmark: reference vs vectorized restructure/load/readback.

Runs the Table-2 workload through the ``gatspi`` backend twice — once with
the per-(net, window) Python reference pipeline (``restructure=python``)
and once with the bulk-array pipeline (``restructure=vector``), same
level-batched kernel in both — and writes ``BENCH_restructure.json`` at the
repository root with per-phase timings (restructure, host-to-device load,
scheduling, kernel, readback) for both modes, extending the
``BENCH_kernel.json``-style tracking to the non-kernel phases.

Accuracy gates the speedup claim: every case first asserts the two modes
produce **bit-identical waveforms** on every net, then the aggregate
restructure+load+readback phase time must beat the reference by at least
:data:`FULL_SPEEDUP_FLOOR`.

Set ``REPRO_BENCH_RESTRUCTURE_SMOKE=1`` to run only the smallest design
with a shortened testbench (the CI smoke configuration).
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.api import resolve_backend  # noqa: E402
from repro.bench import table2_cases  # noqa: E402
from repro.bench.runner import prepare_case  # noqa: E402
from repro.core import SimConfig  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_restructure.json"

#: Required aggregate advantage of the vectorized pipeline over the
#: per-object reference on the restructure+load+readback phases.  The smoke
#: configuration only sanity-checks that vectorization is not slower — a
#: 50-cycle run on a noisy shared CI runner is too small to gate on a real
#: performance floor.
FULL_SPEEDUP_FLOOR = 2.0
SMOKE_SPEEDUP_FLOOR = 1.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_RESTRUCTURE_SMOKE", "0") == "1"


def _cases():
    cases = table2_cases()
    if _smoke():
        cases = [case for case in cases if case.name == "32b_int_adder"]
        cases = [replace(case, cycles=min(case.cycles, 50)) for case in cases]
    return cases


def _measure(case, restructure: str):
    netlist, annotation, stimulus = prepare_case(case)
    config = SimConfig(clock_period=case.clock_period, restructure=restructure)
    backend, options = resolve_backend("gatspi")
    session = backend.prepare(
        netlist, annotation=annotation, config=config, **options
    )
    start = time.perf_counter()
    result = session.run(stimulus, cycles=case.cycles)
    wall = time.perf_counter() - start
    timings = result.timings.as_dict()
    phase = (
        timings["restructure"] + timings["host_to_device"] + timings["readback"]
    )
    return result, {
        "application_seconds": wall,
        "phases": timings,
        "restructure_load_readback_seconds": phase,
        "total_toggles": result.total_toggles(),
    }


def test_restructure_speedup_and_report():
    rows = []
    total = {"python": 0.0, "vector": 0.0}
    for case in _cases():
        results = {}
        measurements = {}
        for mode in ("python", "vector"):
            results[mode], measurements[mode] = _measure(case, mode)
            total[mode] += measurements[mode]["restructure_load_readback_seconds"]
        # Accuracy first: the vectorized pipeline must reproduce the
        # reference bit-for-bit — same per-net toggle counts and same
        # waveform arrays — before its speed counts for anything.
        reference, vectorized = results["python"], results["vector"]
        assert reference.toggle_counts == vectorized.toggle_counts, (
            reference.differing_nets(vectorized)
        )
        assert set(reference.waveforms) == set(vectorized.waveforms)
        for net in reference.waveforms:
            assert reference.waveforms[net] == vectorized.waveforms[net], net
        rows.append(
            {
                "design": case.name,
                "testbench": case.testbench,
                "cycles": case.cycles,
                "python": measurements["python"],
                "vector": measurements["vector"],
                "phase_speedup": (
                    measurements["python"]["restructure_load_readback_seconds"]
                    / measurements["vector"]["restructure_load_readback_seconds"]
                ),
            }
        )

    speedup = total["python"] / total["vector"]
    report = {
        "workload": "table2" if not _smoke() else "table2-smoke",
        "python_phase_seconds": total["python"],
        "vector_phase_seconds": total["vector"],
        "phase_speedup": speedup,
        "cases": rows,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nBENCH_restructure: restructure+load+readback "
        f"python {total['python']:.3f}s, vector {total['vector']:.3f}s "
        f"({speedup:.1f}x) -> {RESULT_PATH}"
    )

    floor = SMOKE_SPEEDUP_FLOOR if _smoke() else FULL_SPEEDUP_FLOOR
    assert speedup >= floor, (
        f"restructure pipeline speedup {speedup:.2f}x below the {floor}x floor"
    )


if __name__ == "__main__":
    test_restructure_speedup_and_report()
