"""Tables 3 and 4: GATSPI vs the OpenMP port and the multi-threaded commercial
simulator.

Table 3 compares GATSPI's kernel against an OpenMP implementation of the same
algorithm on 32-64 CPUs; Table 4 against the multi-threaded mode of the
commercial simulator.  Both baselines are reproduced twice: measured (the
partitioned CPU simulator at laptop scale) and modelled (paper-scale event
counts through the CPU/GPU models).
"""

from repro.bench import representative_cases
from repro.bench.runner import prepare_case
from repro.core import SimConfig
from repro.gpu import KernelPerfModel, V100, format_table, openmp_kernel_seconds
from repro.reference import PartitionedCpuSimulator

PAPER_TABLE3 = {
    # design/testbench -> (GATSPI kernel s, OpenMP kernel s, #CPUs)
    "Industry Design A (functional 1)": (0.79, 10.10, 32),
    "Industry Design B (functional 2)": (14.55, 136.09, 40),
    "Industry Design B (high activity short test)": (38.90, 558.94, 64),
}


def test_table3_openmp_comparison(benchmark, representative_artifacts):
    def run_partitioned():
        reports = {}
        for key, artifact in representative_artifacts.items():
            cpus = PAPER_TABLE3.get(key, (0, 0, 32))[2]
            simulator = PartitionedCpuSimulator(
                artifact.netlist,
                annotation=None,
                config=SimConfig(clock_period=artifact.case.clock_period,
                                 cycle_parallelism=4),
                num_workers=cpus,
            )
            netlist, annotation, stimulus = prepare_case(artifact.case)
            simulator = PartitionedCpuSimulator(
                netlist, annotation=annotation,
                config=SimConfig(clock_period=artifact.case.clock_period,
                                 cycle_parallelism=4),
                num_workers=cpus,
            )
            _, report = simulator.run(stimulus, cycles=artifact.case.cycles)
            reports[key] = report
        return reports

    reports = benchmark.pedantic(run_partitioned, rounds=1, iterations=1)

    model = KernelPerfModel(V100)
    rows = []
    for key, artifact in representative_artifacts.items():
        cpus = PAPER_TABLE3[key][2]
        gpu_s = model.predict_kernel_seconds(artifact.workload)
        openmp_s = openmp_kernel_seconds(artifact.workload, num_cpus=cpus)
        report = reports[key]
        rows.append([
            key,
            str(cpus),
            f"{gpu_s * 1e3:.2f}",
            f"{openmp_s * 1e3:.2f}",
            f"{openmp_s / gpu_s:.1f}X",
            f"{PAPER_TABLE3[key][1] / PAPER_TABLE3[key][0]:.1f}X",
            f"{report.load_imbalance():.2f}",
        ])
        # Shape: the modelled GPU beats the modelled OpenMP port, as in Table 3
        # where GATSPI is 9-15X faster than 32-64 CPU cores.
        assert gpu_s < openmp_s
    print("\n=== Table 3: GATSPI vs OpenMP port (modelled, paper-scale shape) ===")
    print(format_table(
        ["Design (testbench)", "#CPUs", "GPU kernel (ms)", "OpenMP kernel (ms)",
         "Model speedup", "Paper speedup", "Measured imbalance"],
        rows,
    ))


def test_table4_multithreaded_commercial(benchmark, representative_artifacts):
    model = KernelPerfModel(V100)

    def evaluate():
        rows = []
        for key, artifact in representative_artifacts.items():
            single = model.baseline_application_seconds(artifact.workload)
            multi = model.baseline_multithread_seconds(artifact.workload, threads=16)
            gpu_app = artifact.row.modeled_gpu_app_s
            rows.append((key, single, multi, gpu_app))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    formatted = []
    for key, single, multi, gpu_app in rows:
        formatted.append([
            key, f"{single:.3f}", f"{multi:.3f}", f"{gpu_app:.3f}",
            f"{multi / gpu_app:.1f}X",
        ])
        # Table 4's shape: multi-threading helps the commercial tool by only
        # 2-4X, and GATSPI still beats the multi-threaded baseline.
        assert single / 8 < multi < single
        assert gpu_app < multi
    print("\n=== Table 4: GATSPI vs multi-threaded commercial baseline (modelled) ===")
    print(format_table(
        ["Design (testbench)", "1-core app (s)", "16-thread app (s)",
         "GATSPI app (s)", "Speedup"],
        formatted,
    ))
