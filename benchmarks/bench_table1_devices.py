"""Table 1: comparison of recent NVIDIA GPU architectures.

A static table in the paper; here it is regenerated from the device specs
used by the performance model, and the benchmark measures the (trivial)
occupancy-calculator call so the table appears in the benchmark run.
"""

from repro.gpu import A100, T4, V100, compute_occupancy, device_comparison_table


def test_table1_device_comparison(benchmark):
    table = benchmark.pedantic(device_comparison_table, rounds=1, iterations=1)
    print("\n=== Table 1: GPU architecture comparison ===")
    print(table)
    assert A100.sm_count > V100.sm_count > T4.sm_count
    assert A100.memory_bandwidth_gbps > V100.memory_bandwidth_gbps
    assert A100.l2_cache_mb > V100.l2_cache_mb > T4.l2_cache_mb
    # The paper's launch configuration is register-limited to ~50% occupancy.
    occupancy = compute_occupancy(V100, 512, 64)
    assert abs(occupancy.occupancy_percent - 50.0) < 6.0
