"""Table 8 and Fig. 6: scaling across GPU generations and GPU counts.

Table 8 compares kernel runtimes on T4 / V100 / A100; Fig. 6 shows kernel
runtime for Design B's concatenated testbenches on 1 CPU core, a 64-core
OpenMP run, 1/8 V100s and 1/4 A100s.  Both are regenerated from the analytic
device models driven by the measured workloads, and the multi-device
cycle-parallel distribution is additionally exercised with the real engine.
"""

from repro.bench.runner import prepare_case
from repro.core import SimConfig, simulate_multi_gpu
from repro.gpu import (
    A100,
    KernelPerfModel,
    MultiGpuModel,
    T4,
    V100,
    format_table,
    openmp_kernel_seconds,
)

PAPER_TABLE8 = {
    # speedups vs 1 CPU core on (T4, V100, A100)
    "NVDLA,large(scan)": (60, 254, 385),
    "Design B(func. 2)": (195, 1026, 1232),
    "Design B(high activity)": (179, 1198, 1828),
}


def test_table8_gpu_generation_scaling(benchmark, representative_artifacts):
    def evaluate():
        rows = []
        for key, artifact in representative_artifacts.items():
            per_device = {}
            for device in (T4, V100, A100):
                model = KernelPerfModel(device)
                per_device[device.name] = (
                    model.predict_kernel_seconds(artifact.workload),
                    model.kernel_speedup(artifact.workload),
                )
            rows.append((key, per_device))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    formatted = []
    for key, per_device in rows:
        formatted.append(
            [key] + [
                f"{per_device[name][0] * 1e3:.2f}ms ({per_device[name][1]:.0f}X)"
                for name in ("T4", "V100", "A100")
            ]
        )
        # Table 8 shape: A100 fastest, T4 slowest, everything beats the CPU.
        assert per_device["T4"][0] > per_device["V100"][0] > per_device["A100"][0]
        assert per_device["A100"][1] > per_device["V100"][1] > 1
    print("\n=== Table 8: modelled kernel runtime/speedup per GPU generation ===")
    print(format_table(["Design (testbench)", "T4", "V100", "A100"], formatted))


def test_fig6_multi_gpu_scaling(benchmark, representative_artifacts):
    # Fig. 6 uses Design B with all testbenches concatenated; the
    # high-activity representative stands in for the concatenated workload.
    key, artifact = [
        (k, a) for k, a in representative_artifacts.items() if "high activity" in k
    ][0]

    def evaluate():
        v100_curve = MultiGpuModel(V100).scaling_curve(artifact.workload, [1, 8])
        a100_curve = MultiGpuModel(A100).scaling_curve(artifact.workload, [1, 4])
        cpu = KernelPerfModel(V100).baseline_kernel_seconds(artifact.workload)
        openmp = openmp_kernel_seconds(artifact.workload, num_cpus=64)
        return v100_curve, a100_curve, cpu, openmp

    v100_curve, a100_curve, cpu, openmp = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )

    rows = [["1 CPU core", f"{cpu:.2f}", "1X"],
            ["64-core OpenMP", f"{openmp:.2f}", f"{cpu / openmp:.0f}X"]]
    for point in v100_curve + a100_curve:
        rows.append(
            [point.label, f"{point.kernel_seconds:.4f}",
             f"{point.speedup_vs_cpu:.0f}X"]
        )
    print("\n=== Fig. 6: re-simulation kernel runtime across platforms (modelled) ===")
    print(format_table(["Platform", "Kernel runtime (s)", "Speedup vs 1 CPU"], rows))

    # Shape checks mirroring Fig. 6's ordering: CPU < OpenMP < 1 GPU < n GPUs,
    # with sub-linear multi-GPU scaling.
    assert cpu > openmp > v100_curve[0].kernel_seconds
    assert v100_curve[1].kernel_seconds < v100_curve[0].kernel_seconds
    assert a100_curve[1].kernel_seconds < a100_curve[0].kernel_seconds
    assert v100_curve[0].kernel_seconds / v100_curve[1].kernel_seconds < 8.0

    # The real multi-device distribution preserves total activity while the
    # slowest share bounds the parallel runtime.
    netlist, annotation, stimulus = prepare_case(artifact.case)
    multi = simulate_multi_gpu(
        netlist, stimulus, artifact.case.cycles, num_devices=4,
        annotation=annotation,
        config=SimConfig(clock_period=artifact.case.clock_period,
                         cycle_parallelism=8),
    )
    assert multi.speedup_vs_single_device > 1.5
    print(f"measured 4-device cycle-parallel distribution: "
          f"{multi.speedup_vs_single_device:.1f}X vs serial, "
          f"imbalance {multi.load_imbalance():.2f}")
