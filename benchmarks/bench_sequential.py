"""Benchmark: clocked sequential throughput on the Yosys LFSR fixture.

The clocked update loop (:meth:`Session.run_cycles`) dispatches one
combinational frame per cycle — frames are serially dependent on the
register captures between them, so unlike combinational replay they
cannot batch under ``cycle_parallelism``.  The claim this bench gates is
that the sequential machinery (plan validation, PI/Q window assembly,
capture, event ledger, stitch) adds only bounded overhead on top of the
frames themselves:

* **cycles/sec** on the imported 8-bit LFSR fixture is measured and
  reported;
* the clocked loop must stay within :data:`FRAME_THROUGHPUT_FLOOR` of
  the *combinational per-frame baseline* — the same session running the
  same per-frame workload (one representative frame's waveforms, clock
  and register outputs supplied as stimulus) through plain ``run()``
  once per cycle.

Accuracy gates the speed claim: before any timing, the gatspi clocked
run is asserted bit-identical (final register state and per-net toggle
counts) to the ``event``-driven oracle.

Each timed leg runs in its own subprocess so interpreter warm-up and
allocator state measure that leg alone.  Writes ``BENCH_sequential.json``
at the repository root.

Set ``REPRO_BENCH_SEQUENTIAL_SMOKE=1`` to shrink the run and only
sanity-check the machinery (the CI smoke configuration — shared runners
are too noisy to gate real floors).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.api import get_backend  # noqa: E402
from repro.core import SimConfig  # noqa: E402
from repro.netlist import load_fixture  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_sequential.json"

#: Clocked cycles/sec must stay within this factor of the combinational
#: per-frame dispatch baseline on the same design.
FRAME_THROUGHPUT_FLOOR = 0.8
#: Smoke floor: tiny runs on shared CI runners only prove the machinery.
SMOKE_FRAME_THROUGHPUT_FLOOR = 0.05

FIXTURE = "lfsr"
CLOCK_PERIOD = 1000
#: Frame whose waveforms seed the combinational baseline stimulus (late
#: enough that the LFSR has left its low-activity power-on neighborhood).
TEMPLATE_FRAME = 5


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SEQUENTIAL_SMOKE", "0") == "1"


def _cycles() -> int:
    return 64 if _smoke() else 1_500


def _bit_identity_cycles() -> int:
    return 32 if _smoke() else 200


def _session():
    netlist = load_fixture(FIXTURE)
    config = SimConfig(clock_period=CLOCK_PERIOD, store_waveforms=True)
    return netlist, get_backend("gatspi").prepare(netlist, config=config)


def _frame_stimulus(netlist, session):
    """One representative frame of the clocked run, as plain stimulus.

    Clock and register-output waveforms ride along with the primary
    inputs, exactly as the clocked driver supplies them to each frame —
    so a ``run(frame, duration=P)`` call does the same combinational
    work as one clocked cycle, minus the sequential machinery.
    """
    warm = session.run_cycles({}, TEMPLATE_FRAME + 2)
    start = TEMPLATE_FRAME * CLOCK_PERIOD
    frame = {}
    for net in list(netlist.inputs) + [
        inst.output_net() for inst in netlist.sequential_instances()
    ]:
        frame[net] = warm.waveforms[net].window(
            start, start + CLOCK_PERIOD, rebase=True
        )
    return frame


def _measure_clocked(cycles: int) -> Dict[str, object]:
    netlist, session = _session()
    session.run_cycles({}, 8)  # warm the compile/plan caches
    start = time.perf_counter()
    result = session.run_cycles({}, cycles)
    seconds = time.perf_counter() - start
    return {
        "mode": "clocked",
        "cycles": cycles,
        "seconds": seconds,
        "cycles_per_second": cycles / seconds,
        "total_toggles": sum(result.toggle_counts.values()),
    }


def _measure_baseline(cycles: int) -> Dict[str, object]:
    netlist, session = _session()
    frame = _frame_stimulus(netlist, session)
    session.run(frame, duration=CLOCK_PERIOD)  # warm
    start = time.perf_counter()
    for _ in range(cycles):
        session.run(frame, duration=CLOCK_PERIOD)
    seconds = time.perf_counter() - start
    return {
        "mode": "combinational-per-frame",
        "cycles": cycles,
        "seconds": seconds,
        "cycles_per_second": cycles / seconds,
    }


def _measure_in_subprocess(mode: str, cycles: int) -> Dict[str, object]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--measure",
            mode,
            str(cycles),
        ],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_sequential_throughput_and_report():
    netlist, session = _session()

    # Accuracy first: the clocked gatspi run must be bit-identical to
    # the event-driven oracle before cycles/sec means anything.
    cycles = _bit_identity_cycles()
    oracle = get_backend("event").prepare(
        netlist, config=SimConfig(clock_period=CLOCK_PERIOD, store_waveforms=True)
    )
    gatspi_run = session.run_cycles({}, cycles)
    event_run = oracle.run_cycles({}, cycles)
    assert gatspi_run.register_state == event_run.register_state, (
        "clocked gatspi register state diverges from the event oracle"
    )
    assert dict(gatspi_run.toggle_counts) == dict(event_run.toggle_counts), (
        "clocked gatspi toggle counts diverge from the event oracle"
    )

    clocked = _measure_in_subprocess("clocked", _cycles())
    baseline = _measure_in_subprocess("baseline", _cycles())
    ratio = clocked["cycles_per_second"] / baseline["cycles_per_second"]
    floor = SMOKE_FRAME_THROUGHPUT_FLOOR if _smoke() else FRAME_THROUGHPUT_FLOOR

    report = {
        "workload": (
            f"Yosys '{FIXTURE}' fixture ({netlist.gate_count} gates, "
            f"{netlist.sequential_count} flops), period={CLOCK_PERIOD}"
            + (" smoke" if _smoke() else "")
        ),
        "bit_identity_cycles": cycles,
        "clocked": clocked,
        "combinational_baseline": baseline,
        "clocked_vs_baseline_ratio": ratio,
        "frame_throughput_floor": floor,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nBENCH_sequential: {clocked['cycles']:,} cycles in "
        f"{clocked['seconds']:.2f}s ({clocked['cycles_per_second']:,.0f} "
        f"cyc/s clocked vs {baseline['cycles_per_second']:,.0f} cyc/s "
        f"baseline, ratio {ratio:.2f}, floor {floor}) -> {RESULT_PATH}"
    )

    assert ratio >= floor, (
        f"clocked throughput fell to {ratio:.2f}x of the combinational "
        f"per-frame baseline (floor {floor})"
    )


if __name__ == "__main__":
    if len(sys.argv) == 4 and sys.argv[1] == "--measure":
        mode, cycles = sys.argv[2], int(sys.argv[3])
        if mode == "clocked":
            print(json.dumps(_measure_clocked(cycles)))
        else:
            print(json.dumps(_measure_baseline(cycles)))
    else:
        test_sequential_throughput_and_report()
