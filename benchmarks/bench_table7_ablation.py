"""Table 7: kernel runtimes without key functional features.

The paper removes (a) interconnect inertial-delay filtering and (b) full
conditional SDF support and observes only a 5-13% kernel-time reduction,
concluding the features are worth their cost.  Here the same ablation is run
on the representative benchmarks with the real engine: runtime is measured
and, equally importantly, the activity the ablated configurations report is
shown to drift from the full-featured (accurate) result.
"""

import time

from repro.bench.runner import prepare_case
from repro.core import GatspiEngine, SimConfig
from repro.gpu import format_table


def run_variants(case):
    netlist, annotation, stimulus = prepare_case(case)
    variants = {
        "Full features": SimConfig(clock_period=case.clock_period),
        "No net delay filtering": SimConfig(
            clock_period=case.clock_period, enable_net_delay_filtering=False
        ),
        "No net delay + no full SDF": SimConfig(
            clock_period=case.clock_period,
            enable_net_delay_filtering=False,
            full_sdf=False,
        ),
    }
    results = {}
    for label, config in variants.items():
        engine = GatspiEngine(netlist, annotation=annotation, config=config)
        start = time.perf_counter()
        result = engine.simulate(stimulus, cycles=case.cycles)
        elapsed = time.perf_counter() - start
        results[label] = (result, elapsed)
    return results


def test_table7_feature_ablation(benchmark, representative_artifacts):
    artifacts = list(representative_artifacts.items())

    def run_all():
        return {key: run_variants(artifact.case) for key, artifact in artifacts}

    all_results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for key, variants in all_results.items():
        full_result, full_time = variants["Full features"]
        row = [key]
        for label in ("Full features", "No net delay filtering",
                      "No net delay + no full SDF"):
            result, elapsed = variants[label]
            delta_toggles = abs(result.total_toggles() - full_result.total_toggles())
            row.append(f"{result.kernel_runtime:.2f}s (Δtc {delta_toggles})")
        rows.append(row)
        # Shape check: the ablations change kernel runtime only modestly
        # (the paper reports 5-13%); they are not order-of-magnitude effects.
        times = [variants[label][0].kernel_runtime for label in variants]
        assert max(times) < 2.0 * min(times)
    print("\n=== Table 7: kernel runtime and activity drift without key features ===")
    print(format_table(
        ["Design (testbench)", "Full", "No net delay", "No net delay + no full SDF"],
        rows,
    ))
