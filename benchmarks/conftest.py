"""Shared fixtures for the paper-reproduction benchmarks.

The representative benchmark runs (Design A functional, Design B functional,
Design B high activity — the workloads the paper reuses for Tables 3, 5, 6,
7, 8 and Fig. 6) are executed once per session and shared across benchmark
modules.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.bench import representative_cases, run_case  # noqa: E402
from repro.core import SimConfig  # noqa: E402


@pytest.fixture(scope="session")
def representative_artifacts():
    """Run the three representative benchmarks once and cache the artifacts."""
    artifacts = {}
    for case in representative_cases():
        key = f"{case.name} ({case.testbench})"
        artifacts[key] = run_case(
            case, config=SimConfig(clock_period=case.clock_period)
        )
    return artifacts
