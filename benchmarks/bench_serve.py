"""Serving-layer benchmark: throughput under concurrent load.

Unlike the kernel/restructure/device benches — which time one run of one
engine — this bench measures the quantity the serving subsystem exists
for: **requests per second and request latency under concurrent clients**.
A :class:`~repro.serve.SimulationService` is driven by 1 / 4 / 16
concurrent clients re-simulating one compiled design, once through the
plain single-session ``gatspi`` backend (every request is a full engine
run, serialized on the shared session) and once through
``gatspi-sharded:shards=4`` (adaptive window-axis sharding plus
micro-batch fusion: queued same-design requests execute as one fused
engine run and are sliced apart bit-exactly).

Writes ``BENCH_serve.json`` at the repository root with requests/sec and
p50/p99 client-observed latency for every (backend, concurrency) cell,
plus the **no-regression floor**: at 4 concurrent clients the sharded
backend's throughput must be at least
:data:`SHARDED_NO_REGRESSION_FLOOR` (1.0x) of the single-session
backend's.  The floor is load-bearing in both regimes the backend
adapts to: on a single-core machine the sharded backend degrades to a
zero-overhead passthrough and wins by fusing micro-batches (amortizing
the engine's per-run fixed costs across the batch); on multi-core
machines it additionally executes shares in parallel.

A third scenario drives the GIL-free process-shard mode
(``workers=process``: shares run on spawned worker processes attached to
the shared-memory design export, :mod:`repro.core.shm`).  Its floor is
core-count-aware, per the ISSUE-8 acceptance criterion: on >= 2 cores
process shards must reach :data:`PROCESS_FLOOR_MULTI_CORE` (1.5x) of the
single-session baseline at 4 clients — true parallelism, not just
fusion — while on a 1-core runner the sharded session adaptively
degrades to the single-shard passthrough and the floor relaxes to
:data:`PROCESS_FLOOR_SINGLE_CORE` (1.0x); the report records
``cpu_count`` so the gap stays visible either way.

Accuracy gates throughput: every response's total switching activity must
equal the single-session reference before any rate is recorded.

The smoke configuration (``REPRO_BENCH_SERVE_SMOKE=1``) shrinks the
workload and only sanity-checks that the ratio is positive — a
seconds-long run on a shared CI runner is too noisy to gate on a real
floor.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path
from concurrent.futures import ThreadPoolExecutor
from threading import Lock

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.api import get_backend  # noqa: E402
from repro.bench import table2_cases  # noqa: E402
from repro.bench.runner import prepare_case  # noqa: E402
from repro.core import SimConfig, clear_compile_cache  # noqa: E402
from repro.serve import ServeRequest, SimulationService  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

#: Throughput floor of gatspi-sharded vs single-session gatspi at 4
#: concurrent clients.  "No regression": serving through the sharded
#: backend must never be slower than serializing full runs on one session.
SHARDED_NO_REGRESSION_FLOOR = 1.0
SMOKE_NO_REGRESSION_FLOOR = 0.0

#: Process-shard throughput floors vs the single-session baseline at 4
#: clients.  Multi-core: shares execute truly in parallel (no shared
#: GIL), so the mode must beat the baseline outright.  Single core: the
#: adaptive width degrades to the single-shard passthrough, so the floor
#: is no-regression only.
PROCESS_FLOOR_MULTI_CORE = 1.5
PROCESS_FLOOR_SINGLE_CORE = 1.0

#: Interleaved (baseline, candidate) measurement pairs per floored cell.
#: Floors gate on the *max* ratio across pairs: when the true ratio sits
#: exactly at the floor (single core, where both sharded modes degrade to
#: the same passthrough, true ratio 1.0), a single noisy sample fails the
#: gate ~half the time, while a genuine regression fails every pair.  The
#: same max-over-interleaved-pairs discipline (mirroring the analysis
#: bench's min-of-ratios overhead bound) is immune to co-tenant drift.
FLOOR_PAIRS = 3

SINGLE_BACKEND = "gatspi"
SHARDED_BACKEND = "gatspi-sharded:shards=4"
PROCESS_BACKEND = "gatspi-sharded:shards=4,workers=process"
CONCURRENCY_LEVELS = (1, 4, 16)
SERVICE_WORKERS = 4

#: Requests per client at each concurrency level (full mode).  The
#: 4-client cell carries the no-regression floor, so it runs the most
#: requests: enough steady-state rounds that the (unfused) warm-up batch
#: does not dominate the measured rate.
REQUESTS_PER_CLIENT = {1: 6, 4: 6, 16: 1}
SMOKE_REQUESTS_PER_CLIENT = {1: 2, 4: 1, 16: 1}


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SERVE_SMOKE", "0") == "1"


def _case():
    """The served design: Industry Design B (largest Table-2 workload)."""
    cases = [
        case
        for case in table2_cases()
        if case.name == "Industry Design B" and case.testbench == "functional 2"
    ]
    case = cases[0]
    if _smoke():
        case = [c for c in table2_cases() if c.name == "32b_int_adder"][0]
        case = replace(case, cycles=min(case.cycles, 50))
    return case


def _percentile(sorted_values, fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def _measure_scenario(workload, backend: str, clients: int, per_client: int):
    """One (backend, concurrency) cell: drive the service, collect rates."""
    netlist, annotation, stimulus, cycles, config, reference_toggles = workload
    latencies = []
    fused_count = 0
    lock = Lock()

    def request(tag: str) -> ServeRequest:
        return ServeRequest(
            netlist=netlist,
            stimulus=stimulus,
            backend=backend,
            annotation=annotation,
            config=config,
            cycles=cycles,
            tag=tag,
        )

    with SimulationService(
        max_workers=SERVICE_WORKERS, queue_size=256
    ) as service:
        warm = service.run(request("warmup"))
        assert warm.result.total_toggles() == reference_toggles, (
            f"{backend}: served result diverged from the single-session "
            f"reference"
        )

        def client(index: int) -> None:
            nonlocal fused_count
            for step in range(per_client):
                start = time.perf_counter()
                response = service.run(request(f"c{index}r{step}"))
                elapsed = time.perf_counter() - start
                assert response.result.total_toggles() == reference_toggles
                with lock:
                    latencies.append(elapsed)
                    if response.fused:
                        fused_count += 1

        wall_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            for future in [pool.submit(client, i) for i in range(clients)]:
                future.result()
        wall = time.perf_counter() - wall_start
        stats = service.stats()

    total = clients * per_client
    ordered = sorted(latencies)
    return {
        "clients": clients,
        "requests": total,
        "wall_seconds": wall,
        "requests_per_second": total / wall,
        "latency_p50_ms": _percentile(ordered, 0.50) * 1e3,
        "latency_p99_ms": _percentile(ordered, 0.99) * 1e3,
        "fused_requests": fused_count,
        "fused_fraction": fused_count / total,
        "service_batches": stats["batches"],
        "max_batch_size": stats["max_batch_size"],
    }


def test_serve_throughput_and_report():
    case = _case()
    clear_compile_cache()
    netlist, annotation, stimulus = prepare_case(case)
    config = SimConfig(clock_period=case.clock_period)
    reference = (
        get_backend("gatspi")
        .prepare(netlist, annotation=annotation, config=config)
        .run(stimulus, cycles=case.cycles)
    )
    workload = (
        netlist, annotation, stimulus, case.cycles, config,
        reference.total_toggles(),
    )
    per_client = SMOKE_REQUESTS_PER_CLIENT if _smoke() else REQUESTS_PER_CLIENT

    backends = (SINGLE_BACKEND, SHARDED_BACKEND, PROCESS_BACKEND)
    scenarios = {backend: {} for backend in backends}
    for clients in CONCURRENCY_LEVELS:
        for backend in backends:
            scenarios[backend][str(clients)] = _measure_scenario(
                workload, backend, clients, per_client[clients]
            )

    def ratios_vs_single(backend):
        return {
            str(clients): (
                scenarios[backend][str(clients)]["requests_per_second"]
                / scenarios[SINGLE_BACKEND][str(clients)]["requests_per_second"]
            )
            for clients in CONCURRENCY_LEVELS
        }

    ratios = ratios_vs_single(SHARDED_BACKEND)
    process_ratios = ratios_vs_single(PROCESS_BACKEND)
    cpu_count = os.cpu_count() or 1
    process_floor = (
        PROCESS_FLOOR_MULTI_CORE if cpu_count >= 2 else PROCESS_FLOOR_SINGLE_CORE
    )

    # Floored 4-client cell: re-measure interleaved pairs (the sweep
    # above is pair #1) and gate on the max ratio per candidate backend.
    floor_samples = {
        SHARDED_BACKEND: [ratios["4"]],
        PROCESS_BACKEND: [process_ratios["4"]],
    }
    if not _smoke():
        for _ in range(FLOOR_PAIRS - 1):
            base = _measure_scenario(
                workload, SINGLE_BACKEND, 4, per_client[4]
            )["requests_per_second"]
            for backend in (SHARDED_BACKEND, PROCESS_BACKEND):
                cell = _measure_scenario(workload, backend, 4, per_client[4])
                floor_samples[backend].append(
                    cell["requests_per_second"] / base
                )
    report = {
        "workload": {
            "design": case.name,
            "testbench": case.testbench,
            "cycles": case.cycles,
            "gate_count": netlist.gate_count,
            "mode": "smoke" if _smoke() else "full",
        },
        "service_workers": SERVICE_WORKERS,
        "cpu_count": cpu_count,
        "single_backend": SINGLE_BACKEND,
        "sharded_backend": SHARDED_BACKEND,
        "process_backend": PROCESS_BACKEND,
        "scenarios": scenarios,
        "sharded_vs_single_rps_ratio": ratios,
        "process_vs_single_rps_ratio": process_ratios,
        "floor_ratio_samples_at_4_clients": {
            backend: samples for backend, samples in floor_samples.items()
        },
        "floor_methodology": (
            f"max ratio over {FLOOR_PAIRS} interleaved "
            f"(single, candidate) measurement pairs"
        ),
        "no_regression_floor_at_4_clients": (
            SMOKE_NO_REGRESSION_FLOOR if _smoke() else SHARDED_NO_REGRESSION_FLOOR
        ),
        "process_floor_at_4_clients": (
            SMOKE_NO_REGRESSION_FLOOR if _smoke() else process_floor
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    summary = ", ".join(
        f"{clients} clients {ratios[str(clients)]:.2f}x"
        for clients in CONCURRENCY_LEVELS
    )
    process_summary = ", ".join(
        f"{clients} clients {process_ratios[str(clients)]:.2f}x"
        for clients in CONCURRENCY_LEVELS
    )
    print(f"\nBENCH_serve: sharded-vs-single rps {summary}")
    print(
        f"BENCH_serve: process-vs-single rps {process_summary} "
        f"(cpu_count={cpu_count}) -> {RESULT_PATH}"
    )

    floor = SMOKE_NO_REGRESSION_FLOOR if _smoke() else SHARDED_NO_REGRESSION_FLOOR
    sharded_best = max(floor_samples[SHARDED_BACKEND])
    assert sharded_best >= floor, (
        f"gatspi-sharded at {sharded_best:.2f}x of single-session gatspi "
        f"throughput under 4 concurrent clients (max of "
        f"{len(floor_samples[SHARDED_BACKEND])} interleaved pairs, floor "
        f"{floor}x): the sharded serving path regressed"
    )
    if not _smoke():
        process_best = max(floor_samples[PROCESS_BACKEND])
        assert process_best >= process_floor, (
            f"workers=process at {process_best:.2f}x of single-session "
            f"gatspi throughput under 4 concurrent clients (max of "
            f"{len(floor_samples[PROCESS_BACKEND])} interleaved pairs, "
            f"floor {process_floor}x on {cpu_count} core(s)): the "
            f"process-shard serving path regressed"
        )


if __name__ == "__main__":
    test_serve_throughput_and_report()
