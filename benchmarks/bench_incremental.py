"""Microbenchmark: incremental rerun vs full re-simulation for ECO loops.

Models the interactive glitch-ECO loop on the Table-2 ``Industry Design
B`` / ``functional 2`` workload: a designer probes small edit batches (a
single-gate delay tweak, then a 10-gate batch) and wants the re-simulated
waveforms back.  The full path pays a cold ``prepare()`` (levelize, pack,
compile) plus a whole-design run for every probe; ``Session.rerun(edits)``
re-executes only the edits' cone of influence and stitches the rest from
the retained baseline.  Writes ``BENCH_incremental.json`` at the
repository root with wall times, speedups, and dirty-set statistics.

Accuracy gates the speedup claim: each batch first asserts the rerun is
**bit-identical** to the cold full run of the edited design, then the
single-gate speedup must beat :data:`FULL_SPEEDUP_FLOOR`.

Set ``REPRO_BENCH_INCREMENTAL_SMOKE=1`` to shorten the testbench and only
sanity-check the ordering (the CI smoke configuration).
"""

from __future__ import annotations

import copy
import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.api import resolve_backend  # noqa: E402
from repro.bench.runner import prepare_case  # noqa: E402
from repro.bench.suites import case_by_name  # noqa: E402
from repro.core import SimConfig, clear_compile_cache  # noqa: E402
from repro.core.edits import SetPinDelay  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_incremental.json"

#: Required advantage of ``Session.rerun`` over a cold prepare+run for a
#: single-gate ECO on Design B (ISSUE 7's headline number).  The smoke
#: configuration only checks incremental is not slower — a 50-cycle run
#: on a noisy shared CI runner is too small to gate on a real floor.
FULL_SPEEDUP_FLOOR = 5.0
SMOKE_SPEEDUP_FLOOR = 1.0

def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_INCREMENTAL_SMOKE", "0") == "1"


def _case():
    case = case_by_name("Industry Design B", "functional 2")
    if _smoke():
        case = replace(case, cycles=min(case.cycles, 50))
    return case


def _sink_gate_edit(netlist):
    """One delay edit on a deepest-level gate — the canonical glitch fix:
    path-balancing buffers land at a specific gate input near the path
    endpoint, so the forward cone is tiny."""
    from repro.netlist import levelize

    lev = levelize(netlist)
    for level in reversed(lev.levels):
        for name in level:
            inst = netlist.instances[name]
            if inst.cell.num_inputs >= 2:
                return [
                    SetPinDelay(
                        gate=inst.name, pin=inst.cell.inputs[-1],
                        rise=17.0, fall=13.0,
                    )
                ]
    raise AssertionError("design has no multi-input combinational gate")


def _spread_batch(netlist, size: int):
    """``size`` single-pin delay edits on gates spread across the design
    (a worst-ish case: the union of forward cones is large)."""
    gates = [
        inst for inst in netlist.combinational_instances()
        if inst.cell.num_inputs >= 2
    ]
    stride = max(1, len(gates) // (size + 1))
    batch = []
    for k in range(size):
        inst = gates[(k + 1) * stride % len(gates)]
        batch.append(
            SetPinDelay(
                gate=inst.name, pin=inst.cell.inputs[-1],
                rise=17.0 + k, fall=13.0 + k,
            )
        )
    return batch


def _assert_bit_identical(reference, candidate, context: str) -> None:
    assert reference.toggle_counts == candidate.toggle_counts, (
        f"{context}: toggle counts diverge on "
        f"{reference.differing_nets(candidate)}"
    )
    assert set(reference.waveforms) == set(candidate.waveforms), context
    for net in reference.waveforms:
        assert reference.waveforms[net] == candidate.waveforms[net], (
            f"{context}: waveform diverges on net {net!r}"
        )


def _measure_full(case, netlist, annotation, edits, stimulus, config):
    """Cold full turnaround: edited design, fresh compile, whole run."""
    work_netlist = copy.deepcopy(netlist)
    work_annotation = copy.deepcopy(annotation)
    for edit in edits:
        edit.apply(work_netlist, work_annotation)
    clear_compile_cache()
    backend, options = resolve_backend("gatspi")
    start = time.perf_counter()
    session = backend.prepare(
        work_netlist, annotation=work_annotation, config=config, **options
    )
    result = session.run(stimulus, cycles=case.cycles)
    return result, time.perf_counter() - start


def test_incremental_speedup_and_report():
    case = _case()
    netlist, annotation, stimulus = prepare_case(case)
    config = SimConfig(clock_period=case.clock_period)
    gate_count = len(list(netlist.combinational_instances()))

    backend, options = resolve_backend("gatspi")
    session = backend.prepare(
        netlist, annotation=annotation, config=config, **options
    )
    session.run(stimulus, cycles=case.cycles)  # retained baseline

    batches = (
        ("single-gate", _sink_gate_edit(netlist)),
        ("single-gate-mid-cone", _spread_batch(netlist, 1)),
        ("10-gate", _spread_batch(netlist, 10)),
    )
    rows = []
    speedups = {}
    for label, edits in batches:
        full_result, full_seconds = _measure_full(
            case, netlist, annotation, edits, stimulus, config
        )

        start = time.perf_counter()
        result = session.rerun(edits, stimulus=stimulus, cycles=case.cycles)
        incremental_seconds = time.perf_counter() - start
        # Accuracy first: the stitched partial run must reproduce the
        # cold full run of the edited design bit-for-bit.
        _assert_bit_identical(full_result, result, label)
        assert result.stats.incremental, (
            f"{label}: rerun fell back to a full re-simulation"
        )
        # Restore the base design for the next probe (untimed: the ECO
        # loop's cost per probe is the evaluation, not the bookkeeping).
        session.apply_edits(session.last_edit_receipt.undo_edits)

        speedup = full_seconds / incremental_seconds
        speedups[label] = speedup
        rows.append(
            {
                "batch": label,
                "edits": len(edits),
                "full_seconds": full_seconds,
                "incremental_seconds": incremental_seconds,
                "speedup": speedup,
                "dirty_gates": result.stats.dirty_gates,
                "dirty_fraction": result.stats.dirty_fraction,
            }
        )

    report = {
        "workload": (
            "table2:design_b/functional2"
            + ("-smoke" if _smoke() else "")
        ),
        "design": case.name,
        "testbench": case.testbench,
        "cycles": case.cycles,
        "gate_count": gate_count,
        "single_gate_speedup": speedups["single-gate"],
        "batches": rows,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    for row in rows:
        print(
            f"\nBENCH_incremental: {row['batch']} ECO full "
            f"{row['full_seconds']:.3f}s, rerun "
            f"{row['incremental_seconds']:.3f}s ({row['speedup']:.1f}x, "
            f"dirty {row['dirty_fraction']:.1%}) -> {RESULT_PATH}"
        )

    floor = SMOKE_SPEEDUP_FLOOR if _smoke() else FULL_SPEEDUP_FLOOR
    single = speedups["single-gate"]
    assert single >= floor, (
        f"single-gate ECO speedup {single:.2f}x below the {floor}x floor"
    )


if __name__ == "__main__":
    test_incremental_speedup_and_report()
