"""Microbenchmark: array-backend (device) throughput of the xp data plane.

Runs the Table-2 speedup workload through the ``gatspi`` backend once per
*available* array backend (:mod:`repro.core.xp` — numpy always; torch/cupy
when installed) and writes ``BENCH_device.json`` at the repository root
with gate-evaluations-per-second and per-phase timings for each, so the
device-portability layer's performance is tracked as data, not anecdotes.

Accuracy gates everything: every backend's per-case total switching
activity must equal the numpy backend's (the differential suite holds the
full waveforms bit-identical; the bench re-checks the aggregate).

The numpy no-regression floor: routing the pipeline through the xp layer
must not slow the numpy path down.  The bench compares the numpy backend's
gate-evals/sec against the vector-kernel rate recorded in
``BENCH_kernel.json`` (refreshed on the same machine by
``bench_kernel_vector.py``; CI runs that first) and asserts the ratio
stays above :data:`NUMPY_NO_REGRESSION_FLOOR` — generous slack for machine
noise, tight enough to catch an accidental per-op dispatch cost.  The
smoke configuration (``REPRO_BENCH_DEVICE_SMOKE=1``) only sanity-checks
that the ratio is positive: a 50-cycle run on a shared CI runner is too
small to gate on a real floor.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.api import resolve_backend  # noqa: E402
from repro.bench import table2_cases  # noqa: E402
from repro.bench.runner import prepare_case  # noqa: E402
from repro.core import SimConfig  # noqa: E402
from repro.core.xp import available_array_backends  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_device.json"
KERNEL_REFERENCE_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"

#: Required ratio of the numpy-device rate to the BENCH_kernel.json vector
#: rate (same machine).  The xp layer's numpy backend *is* numpy, so the
#: true ratio is ~1.0; 0.5 absorbs run-to-run noise while still failing on
#: a real dispatch regression.
NUMPY_NO_REGRESSION_FLOOR = 0.5
SMOKE_NO_REGRESSION_FLOOR = 0.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_DEVICE_SMOKE", "0") == "1"


def _cases():
    cases = table2_cases()
    if _smoke():
        cases = [case for case in cases if case.name == "32b_int_adder"]
        cases = [replace(case, cycles=min(case.cycles, 50)) for case in cases]
    return cases


def _measure(case, device: str):
    netlist, annotation, stimulus = prepare_case(case)
    config = SimConfig(clock_period=case.clock_period, device=device)
    backend, options = resolve_backend("gatspi")
    session = backend.prepare(
        netlist, annotation=annotation, config=config, **options
    )
    start = time.perf_counter()
    result = session.run(stimulus, cycles=case.cycles)
    wall = time.perf_counter() - start
    stats = result.stats
    assert stats.device == device
    return {
        "kernel_seconds": result.kernel_runtime,
        "application_seconds": wall,
        "phases": result.timings.as_dict(),
        "gate_evaluations": stats.kernel_invocations,
        "gates_per_second": (
            stats.kernel_invocations / result.kernel_runtime
            if result.kernel_runtime > 0
            else float("inf")
        ),
        "total_toggles": result.total_toggles(),
    }


def _kernel_reference_rate():
    """Vector gate-evals/sec recorded by bench_kernel_vector.py, if any."""
    if not KERNEL_REFERENCE_PATH.exists():
        return None
    try:
        report = json.loads(KERNEL_REFERENCE_PATH.read_text())
        return float(report["vector_gates_per_second"])
    except (ValueError, KeyError):
        return None


def test_device_throughput_and_report():
    devices = available_array_backends()
    rows = []
    totals = {device: {"evals": 0, "seconds": 0.0} for device in devices}
    for case in _cases():
        measurements = {}
        for device in devices:
            m = _measure(case, device)
            measurements[device] = m
            totals[device]["evals"] += m["gate_evaluations"]
            totals[device]["seconds"] += m["kernel_seconds"]
        # Accuracy first: every backend must agree with numpy on total
        # switching activity before its speed counts for anything.
        for device in devices:
            assert (
                measurements[device]["total_toggles"]
                == measurements["numpy"]["total_toggles"]
            ), f"{case.name}: {device} disagrees with numpy"
        rows.append(
            {
                "design": case.name,
                "testbench": case.testbench,
                "cycles": case.cycles,
                "devices": measurements,
            }
        )

    rates = {
        device: totals[device]["evals"] / totals[device]["seconds"]
        for device in devices
    }
    reference = _kernel_reference_rate()
    numpy_vs_reference = (
        rates["numpy"] / reference if reference else None
    )
    report = {
        "workload": "table2" if not _smoke() else "table2-smoke",
        "devices": list(devices),
        "gates_per_second": rates,
        "bench_kernel_vector_reference": reference,
        "numpy_vs_reference": numpy_vs_reference,
        "cases": rows,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    summary = ", ".join(f"{d} {rates[d]:,.0f}/s" for d in devices)
    print(f"\nBENCH_device: gate-evals {summary} -> {RESULT_PATH}")

    if numpy_vs_reference is not None:
        floor = (
            SMOKE_NO_REGRESSION_FLOOR if _smoke() else NUMPY_NO_REGRESSION_FLOOR
        )
        assert numpy_vs_reference > floor, (
            f"numpy device path at {numpy_vs_reference:.2f}x of the "
            f"BENCH_kernel.json vector rate (floor {floor}x): the xp layer "
            f"regressed the numpy hot path"
        )


if __name__ == "__main__":
    test_device_throughput_and_report()
