"""Table 2: benchmarks and kernel/application speedups.

For every (scaled) benchmark the harness measures the GATSPI engine and the
event-driven baseline in Python, verifies SAIF equality (the paper's accuracy
criterion), and evaluates the analytic V100/CPU models for the paper-scale
speedup estimate.  The benchmark time reported by pytest-benchmark is the
whole suite run.
"""

import os

from repro.bench import format_table2, run_suite, table2_cases
from repro.core import SimConfig


def _cases():
    cases = table2_cases()
    if os.environ.get("REPRO_TABLE2_FULL", "1") == "0":
        keep = {"32b_int_adder", "Industry Design A", "Industry Design B"}
        cases = [case for case in cases if case.name in keep]
    return cases


def test_table2_kernel_and_application_speedups(benchmark):
    cases = _cases()
    artifacts = benchmark.pedantic(
        run_suite, args=(cases,), kwargs={"config": None}, rounds=1, iterations=1
    )
    rows = [artifact.row for artifact in artifacts]
    print("\n=== Table 2: benchmarks and speedups (scaled designs) ===")
    print(format_table2(rows))

    # Accuracy: every benchmark's SAIF toggle counts match the baseline.
    assert all(row.saif_match for row in rows)

    # Shape checks against the paper:
    by_key = {(r.name, r.testbench): r for r in rows}
    for artifact in artifacts:
        paper = artifact.case.paper
        row = artifact.row
        # The modelled GPU always beats the modelled single-core baseline.
        assert row.modeled_kernel_speedup > 1
        # Kernel speedup exceeds application speedup (Amdahl), as in Table 2.
        assert row.modeled_kernel_speedup >= row.modeled_app_speedup * 0.9
    # Higher-activity, longer testbenches achieve larger modelled speedups,
    # mirroring the Industry-B rows of Table 2.
    if ("Industry Design B", "high activity long test") in by_key:
        high = by_key[("Industry Design B", "high activity long test")]
        low = by_key[("Industry Design B", "functional 2")]
        assert high.modeled_kernel_speedup >= low.modeled_kernel_speedup * 0.8
