"""Tables 5 and 6: application-phase and kernel profiling.

Table 5 breaks application runtime into host-to-device transfer, stream
synchronize + kernel launch, and kernel execution; Table 6 sweeps the launch
"hyperparameters" {cycle parallelism, threads/block, registers/thread}.
Both are regenerated from the analytic models driven by the measured workload
statistics of the representative benchmarks, alongside the *measured* Python
phase breakdown of the engine for the same runs.
"""

from repro.core import SimConfig
from repro.gpu import (
    APPLICATION_HEADER,
    ApplicationModel,
    KernelPerfModel,
    PROFILE_HEADER,
    V100,
    format_table,
)


def test_table5_application_phase_breakdown(benchmark, representative_artifacts):
    model = ApplicationModel(V100)

    def evaluate():
        profiles = []
        for key, artifact in representative_artifacts.items():
            source_events = sum(
                artifact.gatspi_result.toggle_counts.get(net, 0)
                for net in artifact.netlist.source_nets()
            )
            estimate = model.estimate(
                artifact.workload,
                source_events=source_events,
                net_count=len(artifact.netlist.nets),
            )
            profiles.append((key, estimate))
        return profiles

    profiles = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = []
    for key, estimate in profiles:
        profile = estimate.to_profile()
        rows.append([key] + profile.as_row()[1:])
        # Table 5 shape: H2D transfer is not the dominant phase, and the
        # high-activity run is kernel-dominated.
        assert profile.host_to_device < estimate.total
    print("\n=== Table 5: application phase breakdown (modelled, V100) ===")
    print(format_table(APPLICATION_HEADER, rows))

    measured = [
        [key,
         f"{a.gatspi_result.timings.host_to_device:.3f}",
         f"{a.gatspi_result.timings.scheduling:.3f}",
         f"{a.gatspi_result.timings.kernel:.3f}"]
        for key, a in representative_artifacts.items()
    ]
    print("\n--- measured Python engine phases for the same (scaled) runs ---")
    print(format_table(APPLICATION_HEADER, measured))


def test_table6_hyperparameter_sweep(benchmark, representative_artifacts):
    model = KernelPerfModel(V100)
    design_b_high = next(
        artifact for key, artifact in representative_artifacts.items()
        if "high activity" in key
    )
    design_a = next(
        artifact for key, artifact in representative_artifacts.items()
        if "Design A" in key
    )

    configs = [
        (design_a, SimConfig(cycle_parallelism=32)),
        (design_a, SimConfig(cycle_parallelism=128)),
        (design_a, SimConfig(cycle_parallelism=256)),
        (design_b_high, SimConfig(cycle_parallelism=32)),
        (design_b_high, SimConfig(cycle_parallelism=64)),
        (design_b_high, SimConfig(cycle_parallelism=128)),
        (design_b_high, SimConfig(cycle_parallelism=32, threads_per_block=1024)),
        (design_b_high, SimConfig(cycle_parallelism=32, registers_per_thread=32)),
    ]

    def sweep():
        return [model.profile(artifact.workload, config)
                for artifact, config in configs]

    profiles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== Table 6: kernel profiling vs launch configuration (modelled, V100) ===")
    print(format_table(PROFILE_HEADER, [p.as_row() for p in profiles]))

    baseline = profiles[3]          # Design B high activity, {32,512,64}
    spilled = profiles[7]           # {32,512,32}
    # Table 6 shape checks: forcing 32 registers/thread doubles occupancy but
    # increases latency; more threads raise throughput for the small design.
    assert spilled.occupancy_pct > baseline.occupancy_pct * 1.5
    assert spilled.latency_ms > baseline.latency_ms
    assert profiles[1].threads > profiles[0].threads
