"""Benchmark: streaming replay at scale — out-of-core window pipeline.

The streaming claim has two halves and this bench gates both:

* **cycles/sec flat in run length** — the chunk pipeline re-does no work
  as the horizon grows, so throughput at a million cycles must stay
  within :data:`THROUGHPUT_RATIO_FLOOR` of the 10k-cycle run;
* **memory flat in cycles** — nothing proportional to the whole run is
  retained (stimulus streams in, one recycled pool executes, activity
  accumulates online), so peak RSS at a million cycles must stay within
  :data:`RSS_RATIO_CEILING` of the 10k-cycle run.

Accuracy gates the speed claim: before any measurement, a streamed run
is asserted **bit-identical** (toggle counts and SAIF bytes) to a
whole-run ``run`` + ``saif_from_result`` of the same stimulus.

Each sweep point runs in its own subprocess so ``ru_maxrss`` — a
high-water mark, unresettable within a process — measures that point
alone.  The stimulus is a closed-form periodic toggle source (every
input toggles at its own co-prime-ish period), generated span by span in
O(chunk): an in-memory waveform mapping would itself be O(run) and
defeat the measurement.  Writes ``BENCH_replay.json`` at the repository
root.

Set ``REPRO_BENCH_REPLAY_SMOKE=1`` to shrink the sweep and only
sanity-check the ratios (the CI smoke configuration — shared runners are
too noisy to gate real floors).
"""

from __future__ import annotations

import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Sequence, Tuple

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.api import get_backend  # noqa: E402
from repro.core import SimConfig, Waveform  # noqa: E402
from repro.core.restructure import (  # noqa: E402
    SourceEvents,
    StreamingSourceEvents,
)
from repro.core.xp import HOST  # noqa: E402
from repro.testing import build_random_netlist  # noqa: E402
from repro.waveforms.saif import saif_from_result  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_replay.json"

#: Throughput at the largest sweep point must stay within this factor of
#: the smallest — the "cycles/sec flat in run length" claim.
THROUGHPUT_RATIO_FLOOR = 0.8
#: Peak RSS at the largest sweep point must stay within this factor of
#: the smallest — the "memory flat in cycles" claim.
RSS_RATIO_CEILING = 1.25
#: Smoke bounds: tiny runs on shared CI runners only sanity-check that
#: the machinery holds together, not the real floors.
SMOKE_THROUGHPUT_RATIO_FLOOR = 0.05
SMOKE_RSS_RATIO_CEILING = 3.0

#: One fixed workload for every point: the sweep varies run length only.
SEED = 1
NUM_INPUTS = 6
NUM_GATES = 40
CLOCK_PERIOD = 100
CYCLE_PARALLELISM = 64
CHUNK_CYCLES = 256


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_REPLAY_SMOKE", "0") == "1"


def _sweep() -> Sequence[int]:
    if _smoke():
        return (512, 4_096)
    return (10_000, 100_000, 1_000_000)


def _bit_identity_cycles() -> int:
    return 256 if _smoke() else 2_000


class PeriodicSource(StreamingSourceEvents):
    """Closed-form streaming stimulus: net ``i`` toggles at ``k * p_i``.

    ``span_events`` is computed from the periods alone — O(span) work and
    memory for any run length, which is exactly the property the RSS half
    of the bench needs from its stimulus.
    """

    def __init__(self, nets: Sequence[str], periods: Sequence[int]) -> None:
        self._nets = tuple(nets)
        self._periods = list(periods)

    @property
    def nets(self) -> Tuple[str, ...]:
        return self._nets

    def span_events(
        self, start: int, end: int, retire_before: int = 0
    ) -> SourceEvents:
        hnp = HOST
        N = len(self._nets)
        initial = hnp.zeros(N, dtype=hnp.int64)
        offsets = hnp.zeros(N + 1, dtype=hnp.int64)
        chunks = []
        for i, p in enumerate(self._periods):
            k_lo = start // p + 1
            k_hi = (end - 1) // p
            toggles = hnp.arange(k_lo, k_hi + 1, dtype=hnp.int64) * p
            initial[i] = (start // p) & 1
            chunks.append(toggles)
            offsets[i + 1] = offsets[i] + toggles.size
        times = (
            hnp.concatenate(chunks)
            if int(offsets[-1])
            else hnp.zeros(0, dtype=hnp.int64)
        )
        return SourceEvents(
            nets=self._nets,
            times=times,
            offsets=offsets,
            initial_values=initial,
        )

    def materialize(self, duration: int) -> Dict[str, Waveform]:
        """The same stimulus as in-memory waveforms (bit-identity oracle)."""
        out = {}
        for net, p in zip(self._nets, self._periods):
            out[net] = Waveform.from_initial_and_toggles(
                0, list(range(p, duration, p))
            )
        return out


def _workload():
    netlist = build_random_netlist(
        num_inputs=NUM_INPUTS, num_gates=NUM_GATES, seed=SEED
    )
    config = SimConfig(
        cycle_parallelism=CYCLE_PARALLELISM,
        clock_period=CLOCK_PERIOD,
        stream_chunk_cycles=CHUNK_CYCLES,
    )
    nets = sorted(netlist.source_nets())
    source = PeriodicSource(nets, [191 + 37 * i for i in range(len(nets))])
    return netlist, config, source


def _measure(cycles: int) -> Dict[str, object]:
    """One sweep point, meant to run in a fresh subprocess."""
    netlist, config, source = _workload()
    session = get_backend("gatspi").prepare(netlist, config=config)
    start = time.perf_counter()
    result = session.run_stream(source, cycles=cycles)
    seconds = time.perf_counter() - start
    return {
        "cycles": cycles,
        "seconds": seconds,
        "cycles_per_second": cycles / seconds,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "chunks": result.stats.chunks,
        "windows": result.stats.windows,
        "pool_words_used": result.stats.pool_words_used,
        "total_toggles": result.total_toggles(),
    }


def _measure_in_subprocess(cycles: int) -> Dict[str, object]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--measure", str(cycles)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_streaming_replay_scaling_and_report():
    netlist, config, source = _workload()

    # Accuracy first: streamed toggle counts and SAIF must be
    # bit-identical to the whole-run path before speed means anything.
    cycles = _bit_identity_cycles()
    duration = cycles * CLOCK_PERIOD
    session = get_backend("gatspi").prepare(netlist, config=config)
    reference = session.run(source.materialize(duration), cycles=cycles)
    streamed = session.run_stream(
        source, cycles=cycles, chunk_cycles=max(1, cycles // 4)
    )
    assert streamed.toggle_counts == dict(reference.toggle_counts), (
        "streamed toggle counts diverge from the whole-run oracle"
    )
    assert streamed.saif() == saif_from_result(reference), (
        "streamed SAIF diverges from the whole-run oracle"
    )
    assert streamed.stats.chunks > 1

    rows = [_measure_in_subprocess(c) for c in _sweep()]

    first, last = rows[0], rows[-1]
    throughput_ratio = (
        last["cycles_per_second"] / first["cycles_per_second"]
    )
    rss_ratio = last["peak_rss_kb"] / first["peak_rss_kb"]
    report = {
        "workload": (
            f"random netlist ({NUM_GATES} gates, {NUM_INPUTS} inputs, "
            f"seed {SEED}), periodic stimulus, chunk={CHUNK_CYCLES} cycles"
            + ("-smoke" if _smoke() else "")
        ),
        "bit_identity_cycles": cycles,
        "sweep": rows,
        "throughput_ratio_last_vs_first": throughput_ratio,
        "peak_rss_ratio_last_vs_first": rss_ratio,
        "throughput_ratio_floor": (
            SMOKE_THROUGHPUT_RATIO_FLOOR if _smoke() else THROUGHPUT_RATIO_FLOOR
        ),
        "peak_rss_ratio_ceiling": (
            SMOKE_RSS_RATIO_CEILING if _smoke() else RSS_RATIO_CEILING
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    for row in rows:
        print(
            f"\nBENCH_replay: {row['cycles']:>9,} cycles in "
            f"{row['seconds']:.2f}s ({row['cycles_per_second']:,.0f} cyc/s, "
            f"peak RSS {row['peak_rss_kb'] / 1024:.0f} MB, "
            f"{row['chunks']} chunks) -> {RESULT_PATH}"
        )
    print(
        f"BENCH_replay: throughput ratio {throughput_ratio:.2f} "
        f"(floor {report['throughput_ratio_floor']}), RSS ratio "
        f"{rss_ratio:.2f} (ceiling {report['peak_rss_ratio_ceiling']})"
    )

    assert throughput_ratio >= report["throughput_ratio_floor"], (
        f"cycles/sec fell to {throughput_ratio:.2f}x from "
        f"{first['cycles']} to {last['cycles']} cycles"
    )
    assert rss_ratio <= report["peak_rss_ratio_ceiling"], (
        f"peak RSS grew {rss_ratio:.2f}x from "
        f"{first['cycles']} to {last['cycles']} cycles"
    )


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--measure":
        print(json.dumps(_measure(int(sys.argv[2]))))
    else:
        test_streaming_replay_scaling_and_report()
