"""Microbenchmark: scalar vs level-batched vector kernel throughput.

Runs the Table-2 speedup workload (same designs and testbenches as
``bench_table2_speedup.py``) through the ``gatspi`` backend twice — once per
kernel — and writes ``BENCH_kernel.json`` at the repository root with
gate-evaluations-per-second for both, so the performance trajectory of the
hot path is tracked as data, not anecdotes.

Set ``REPRO_BENCH_KERNEL_SMOKE=1`` to run only the smallest design with a
shortened testbench (the CI smoke configuration).
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.api import resolve_backend  # noqa: E402
from repro.bench import table2_cases  # noqa: E402
from repro.bench.runner import prepare_case  # noqa: E402
from repro.core import SimConfig  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"

#: Required aggregate advantage of the vector kernel over the scalar one.
#: The smoke configuration only sanity-checks that the vector kernel is not
#: slower — a 50-cycle run on a noisy shared CI runner is too small to gate
#: on a real performance floor.
FULL_SPEEDUP_FLOOR = 5.0
SMOKE_SPEEDUP_FLOOR = 1.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_KERNEL_SMOKE", "0") == "1"


def _cases():
    cases = table2_cases()
    if _smoke():
        cases = [case for case in cases if case.name == "32b_int_adder"]
        cases = [replace(case, cycles=min(case.cycles, 50)) for case in cases]
    return cases


def _measure(case, kernel: str):
    netlist, annotation, stimulus = prepare_case(case)
    config = SimConfig(clock_period=case.clock_period, kernel=kernel)
    backend, options = resolve_backend("gatspi")
    session = backend.prepare(
        netlist, annotation=annotation, config=config, **options
    )
    start = time.perf_counter()
    result = session.run(stimulus, cycles=case.cycles)
    wall = time.perf_counter() - start
    stats = result.stats
    return {
        "kernel_seconds": result.kernel_runtime,
        "application_seconds": wall,
        "gate_evaluations": stats.kernel_invocations,
        "gates_per_second": (
            stats.kernel_invocations / result.kernel_runtime
            if result.kernel_runtime > 0
            else float("inf")
        ),
        "level_batches": stats.level_batches,
        "max_batch_tasks": stats.max_batch_tasks,
        "total_toggles": result.total_toggles(),
    }


def test_vector_kernel_speedup_and_report():
    rows = []
    total = {"scalar": {"evals": 0, "seconds": 0.0}, "vector": {"evals": 0, "seconds": 0.0}}
    for case in _cases():
        measurements = {}
        for kernel in ("scalar", "vector"):
            m = _measure(case, kernel)
            measurements[kernel] = m
            total[kernel]["evals"] += m["gate_evaluations"]
            total[kernel]["seconds"] += m["kernel_seconds"]
        # Accuracy first: both kernels must agree on total switching activity.
        assert (
            measurements["scalar"]["total_toggles"]
            == measurements["vector"]["total_toggles"]
        )
        rows.append(
            {
                "design": case.name,
                "testbench": case.testbench,
                "cycles": case.cycles,
                "scalar": measurements["scalar"],
                "vector": measurements["vector"],
                "kernel_speedup": (
                    measurements["vector"]["gates_per_second"]
                    / measurements["scalar"]["gates_per_second"]
                ),
            }
        )

    rates = {
        kernel: total[kernel]["evals"] / total[kernel]["seconds"]
        for kernel in ("scalar", "vector")
    }
    speedup = rates["vector"] / rates["scalar"]
    report = {
        "workload": "table2" if not _smoke() else "table2-smoke",
        "scalar_gates_per_second": rates["scalar"],
        "vector_gates_per_second": rates["vector"],
        "vector_speedup": speedup,
        "cases": rows,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nBENCH_kernel: scalar {rates['scalar']:,.0f} gate-evals/s, "
          f"vector {rates['vector']:,.0f} gate-evals/s ({speedup:.1f}x) "
          f"-> {RESULT_PATH}")

    floor = SMOKE_SPEEDUP_FLOOR if _smoke() else FULL_SPEEDUP_FLOOR
    assert speedup >= floor, (
        f"vector kernel speedup {speedup:.2f}x below the {floor}x floor"
    )


if __name__ == "__main__":
    test_vector_kernel_speedup_and_report()
