"""Section 4 deployment experiment: the glitch-power-optimization flow.

The paper re-simulates a 1.3M-gate design, applies glitch fixes, re-simulates
to confirm a 1.4% design power saving, and reports a 449X turnaround speedup
over the commercial-simulator flow.  Here the full flow runs on a scaled
glitch-heavy design (array multiplier + industry-like logic) with the same
steps: GATSPI re-simulation, glitch analysis, path-balancing fixes,
confirmation re-simulation, and a turnaround comparison against the
event-driven baseline.
"""

from repro.bench import designs
from repro.core import SimConfig
from repro.gpu import ApplicationModel, KernelPerfModel, KernelWorkload, V100
from repro.opt import GlitchOptimizationFlow
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.waveforms import TestbenchSpec, stimulus_for_netlist


def run_flow():
    netlist = designs.array_multiplier(bits=6)
    delays = SyntheticDelayModel(seed=17, wire_delay_range=(0, 1)).build(netlist)
    annotation = annotation_from_design_delays(netlist, delays)
    spec = TestbenchSpec(name="mult_power_window", cycles=40,
                         activity_factor=0.6, seed=17)
    stimulus = stimulus_for_netlist(netlist, spec, kind="random")
    flow = GlitchOptimizationFlow(
        netlist, annotation=annotation,
        config=SimConfig(clock_period=1000, cycle_parallelism=4),
    )
    outcome = flow.run(stimulus, cycles=spec.cycles, max_gates_to_fix=25,
                       skew_threshold=4.0)
    return netlist, outcome


def test_glitch_optimization_flow(benchmark):
    netlist, outcome = benchmark.pedantic(run_flow, rounds=1, iterations=1)
    summary = outcome.summary()
    print("\n=== Glitch-power-optimization flow (paper Section 4) ===")
    for key, value in summary.items():
        print(f"  {key:>28}: {value:.4g}")
    print(f"  baseline glitch-power fraction: "
          f"{outcome.baseline_glitch.glitch_power_fraction * 100:.2f}%")
    print(f"  optimized glitch-power fraction: "
          f"{outcome.optimized_glitch.glitch_power_fraction * 100:.2f}%")

    # Shape of the paper's result: the flow finds glitch activity, applies
    # fixes, removes glitch toggles, and saves a small single-digit
    # percentage of power while GATSPI's turnaround beats the baseline flow.
    assert outcome.baseline_glitch.total_glitch_toggles > 0
    assert len(outcome.fixes) > 0
    assert outcome.glitch_toggle_reduction > 0
    assert outcome.power_saving_fraction > 0.0
    assert outcome.power_saving_fraction < 0.25

    # Paper-scale turnaround estimate: the commercial flow took 1459.6 minutes
    # vs 3.25 minutes with GATSPI (449X).  Model the same two re-simulations
    # at paper scale from this workload's statistics.
    workload = KernelWorkload(
        design="glitch-flow", gate_count=1_300_000, levels=60,
        widest_level=45_000, level_sizes=[],
        total_input_events=400_000_000, total_output_transitions=180_000_000,
        cycles=50_000, activity_factor=0.06,
    )
    model = KernelPerfModel(V100)
    app = ApplicationModel(V100)
    gatspi_minutes = 2 * app.estimate(
        workload, source_events=60_000_000, net_count=1_500_000
    ).total / 60.0
    baseline_minutes = 2 * model.baseline_application_seconds(workload) / 60.0
    print(f"  modelled paper-scale turnaround: {baseline_minutes:.0f} min -> "
          f"{gatspi_minutes:.2f} min ({baseline_minutes / gatspi_minutes:.0f}X)")
    assert baseline_minutes / gatspi_minutes > 50
