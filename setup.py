"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` falls back to the legacy ``setup.py develop`` path when
PEP 660 editable builds are unavailable (offline machines without ``wheel``).
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
