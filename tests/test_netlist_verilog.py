"""Tests for netlist structures, levelization, Verilog I/O, and validation."""

import pytest

from repro.cells import DEFAULT_LIBRARY
from repro.netlist import (
    Netlist,
    NetlistBuilder,
    NetlistError,
    VerilogError,
    compile_netlist,
    levelize,
    parse_verilog,
    to_networkx,
    validate_netlist,
    write_verilog,
)


class TestNetlistConstruction:
    def test_summary_counts(self, small_netlist):
        summary = small_netlist.summary()
        assert summary["combinational_gates"] == 3
        assert summary["inputs"] == 2
        assert summary["outputs"] == 1

    def test_duplicate_instance_rejected(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_instance("INV", "u0", {"A": "a", "Y": "n1"})
        with pytest.raises(NetlistError):
            netlist.add_instance("INV", "u0", {"A": "a", "Y": "n2"})

    def test_multiple_drivers_rejected(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_instance("INV", "u0", {"A": "a", "Y": "n1"})
        with pytest.raises(NetlistError):
            netlist.add_instance("BUF", "u1", {"A": "a", "Y": "n1"})

    def test_missing_pin_rejected(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_instance("NAND2", "u0", {"A": "a", "Y": "n1"})

    def test_unknown_pin_rejected(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_instance("INV", "u0", {"A": "a", "Q": "x", "Y": "n1"})

    def test_source_and_endpoint_nets(self):
        builder = NetlistBuilder("seq")
        d = builder.input("d")
        clk = builder.input("clk")
        q = builder.flop(d, clk, name="r0")
        builder.output("y")
        builder.gate("INV", [q], output_net="y")
        netlist = builder.build()
        assert set(netlist.source_nets()) == {"d", "clk", q}
        assert "y" in netlist.endpoint_nets()
        assert "d" in netlist.endpoint_nets()  # flop D input
        assert netlist.sequential_count == 1

    def test_cell_histogram(self, small_netlist):
        histogram = small_netlist.cell_histogram()
        assert histogram == {"NAND2": 1, "INV": 1, "XOR2": 1}


class TestLevelization:
    def test_levels_of_small_netlist(self, small_netlist):
        levels = levelize(small_netlist)
        assert levels.gate_levels["u_nand"] == 1
        assert levels.gate_levels["u_inv"] == 2
        assert levels.gate_levels["u_xor"] == 3
        assert levels.depth == 3
        assert levels.widest_level == 1

    def test_combinational_loop_detected(self):
        netlist = Netlist("loop")
        netlist.add_input("a")
        netlist.add_instance("NAND2", "u0", {"A": "a", "B": "n1", "Y": "n0"})
        netlist.add_instance("INV", "u1", {"A": "n0", "Y": "n1"})
        with pytest.raises(NetlistError, match="loop"):
            levelize(netlist)

    def test_undriven_input_detected(self):
        netlist = Netlist("undriven")
        netlist.add_input("a")
        netlist.add_instance("NAND2", "u0", {"A": "a", "B": "floating", "Y": "n0"})
        with pytest.raises(NetlistError, match="undriven"):
            levelize(netlist)

    def test_tie_cells_are_level_one(self):
        netlist = Netlist("ties")
        netlist.add_instance("TIEHI", "u0", {"Y": "one"})
        netlist.add_output("y")
        netlist.add_instance("BUF", "u1", {"A": "one", "Y": "y"})
        levels = levelize(netlist)
        assert levels.gate_levels["u0"] == 1
        assert levels.gate_levels["u1"] == 2

    def test_compile_netlist_groups_by_level(self, random_netlist):
        compiled = compile_netlist(random_netlist)
        assert compiled.gate_count == random_netlist.gate_count
        assert sum(compiled.level_sizes()) == compiled.gate_count
        for level_index, gates in enumerate(compiled.gates_by_level):
            for gate in gates:
                assert gate.level == level_index + 1


class TestVerilog:
    VERILOG = """
    // simple structural netlist
    module top (a, b, y);
      input a, b;
      output y;
      wire n1, n2;
      NAND2 u1 (.A(a), .B(b), .Y(n1));
      INV u2 (.A(n1), .Y(n2));
      XOR2 u3 (.A(n1), .B(n2), .Y(y));
    endmodule
    """

    def test_parse_structural_verilog(self):
        netlist = parse_verilog(self.VERILOG)
        assert netlist.name == "top"
        assert netlist.gate_count == 3
        assert set(netlist.inputs) == {"a", "b"}
        assert netlist.outputs == ["y"]

    def test_round_trip(self, small_netlist):
        text = write_verilog(small_netlist)
        parsed = parse_verilog(text)
        assert parsed.gate_count == small_netlist.gate_count
        assert set(parsed.inputs) == set(small_netlist.inputs)
        assert parsed.cell_histogram() == small_netlist.cell_histogram()

    def test_vector_ports_are_flattened(self):
        text = """
        module vec (a, y);
          input [1:0] a;
          output y;
          AND2 u0 (.A(a[1]), .B(a[0]), .Y(y));
        endmodule
        """
        netlist = parse_verilog(text)
        assert set(netlist.inputs) == {"a[1]", "a[0]"}

    def test_constants_create_tie_cells(self):
        text = """
        module ties (a, y);
          input a;
          output y;
          AND2 u0 (.A(a), .B(1'b1), .Y(y));
        endmodule
        """
        netlist = parse_verilog(text)
        assert "TIEHI" in netlist.cell_histogram()

    def test_unknown_cell_rejected(self):
        text = "module m (a); input a; FOO u0 (.A(a), .Y(b)); endmodule"
        with pytest.raises(VerilogError):
            parse_verilog(text)

    def test_behavioural_code_rejected(self):
        text = "module m (a, y); input a; output y; assign y = a; endmodule"
        with pytest.raises(VerilogError):
            parse_verilog(text)

    def test_missing_module_rejected(self):
        with pytest.raises(VerilogError):
            parse_verilog("wire x;")


class TestValidationAndGraph:
    def test_clean_netlist(self, small_netlist):
        report = validate_netlist(small_netlist)
        assert report.is_clean
        report.raise_if_fatal()

    def test_undriven_net_reported(self):
        netlist = Netlist("bad")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_instance("AND2", "u0", {"A": "a", "B": "nowhere", "Y": "y"})
        report = validate_netlist(netlist)
        assert "nowhere" in report.undriven_nets
        with pytest.raises(NetlistError):
            report.raise_if_fatal()

    def test_networkx_export(self, small_netlist):
        graph = to_networkx(small_netlist)
        assert graph.number_of_nodes() == 3 + 3  # 3 ports + 3 gates
        assert graph.nodes["u_nand"]["cell"] == "NAND2"
        assert graph.has_edge("port:a", "u_nand")
        assert graph.has_edge("u_nand", "u_xor")
