"""Tests for GIL-free process shards and the shared-memory design export.

``gatspi-sharded`` with ``workers="process"`` runs window-axis shares on
spawned worker processes that attach the packed design tensors from a
``multiprocessing.shared_memory`` segment (:mod:`repro.core.shm`).  The
contract under test:

* process shards are **bit-identical** to thread shards (and therefore to
  single-session ``gatspi``) at every shard count;
* the shared segment's lifecycle is leak-free — exported once, attached by
  every worker, unlinked exactly once by ``close()`` and accounted for in
  the module registry;
* the mode's guard rails hold: host-only device, no in-place edits,
  malformed ``workers`` specs rejected at prepare time.
"""

from __future__ import annotations

import os
from multiprocessing import resource_tracker, shared_memory

import numpy as np
import pytest

from repro.api import resolve_backend
from repro.core import SimConfig
from repro.core import shm as design_shm
from repro.core.edits import SetPinDelay
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.testing import build_random_netlist, build_random_stimulus

DURATION = 8_000
CONFIG = SimConfig(clock_period=500, cycle_parallelism=8)


@pytest.fixture(scope="module")
def design():
    netlist = build_random_netlist(num_inputs=6, num_gates=24, seed=51)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=51).build(netlist)
    )
    stimulus = build_random_stimulus(netlist, DURATION, seed=510)
    return netlist, annotation, stimulus


def _prepare(design, spec):
    netlist, annotation, _ = design
    backend, options = resolve_backend(spec)
    return backend.prepare(
        netlist, annotation=annotation, config=CONFIG, **options
    )


def _assert_bit_identical(reference, candidate, label):
    assert candidate.toggle_counts == reference.toggle_counts, label
    assert set(candidate.waveforms) == set(reference.waveforms), label
    for net, wave in reference.waveforms.items():
        assert np.array_equal(
            candidate.waveforms[net].data, wave.data
        ), f"{label}: waveform {net!r}"


# ----------------------------------------------------------------------
# Bit-identity: process shards vs thread shards
# ----------------------------------------------------------------------
@pytest.mark.concurrency
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_process_shards_bit_identical_to_thread_shards(design, shards):
    """Every shard count merges to the thread-mode result bit for bit.

    ``workers="process:2"`` pins the pool width and forces the full
    partition count (like an integer ``workers``), so real multi-process
    sharding is exercised regardless of the host's core count;
    ``shards=1`` covers the in-parent passthrough, which must not spawn
    a pool at all.
    """
    _, _, stimulus = design
    thread_session = _prepare(
        design, f"gatspi-sharded:shards={shards},workers={min(shards, 2)}"
    )
    process_session = _prepare(
        design, f"gatspi-sharded:shards={shards},workers=process:2"
    )
    try:
        assert process_session.worker_mode == "process"
        assert process_session.shard_count == shards
        reference = thread_session.run(stimulus, duration=DURATION)
        candidate = process_session.run(stimulus, duration=DURATION)
        assert candidate.stats.shards == shards
        if shards == 1:
            assert process_session._process_pool is None
        _assert_bit_identical(reference, candidate, f"shards={shards}")
    finally:
        process_session.close()


@pytest.mark.concurrency
def test_adaptive_process_width_never_exceeds_the_machine(design):
    """``workers="process"`` partitions only as wide as the core count.

    Mirrors the thread-mode adaptive rule: per-share overheads are only
    worth paying for shares that actually run in parallel.  On a
    single-core host this degrades to the passthrough (no pool, no
    segment) while staying bit-identical to single-session gatspi.
    """
    netlist, annotation, stimulus = design
    session = _prepare(design, "gatspi-sharded:shards=4,workers=process")
    try:
        expected = max(1, min(4, os.cpu_count() or 1))
        assert session.worker_mode == "process"
        assert session.shard_count == expected
        assert session.worker_count == expected
        candidate = session.run(stimulus, duration=DURATION)
        single = resolve_backend("gatspi")[0].prepare(
            netlist,
            annotation=annotation,
            config=CONFIG.with_updates(store_waveforms=True),
        )
        reference = single.run(stimulus, duration=DURATION)
        _assert_bit_identical(reference, candidate, "adaptive process mode")
    finally:
        session.close()


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------
@pytest.mark.concurrency
def test_no_leaked_segments_after_close(design, monkeypatch):
    """close() unlinks the one exported segment and empties the registry.

    The unregister spy pins the cleanup to the resource tracker: the
    owner's unlink must withdraw the segment's registration (one entry,
    withdrawn once — workers share the parent's tracker, so their
    attachments add nothing to clean up).
    """
    _, _, stimulus = design
    unregistered = []
    original = resource_tracker.unregister

    def spy(name, rtype):
        unregistered.append((name, rtype))
        original(name, rtype)

    monkeypatch.setattr(resource_tracker, "unregister", spy)
    session = _prepare(design, "gatspi-sharded:shards=2,workers=process:2")
    before = design_shm.active_segment_names()
    session.run(stimulus, duration=DURATION)
    exported = [
        name for name in design_shm.active_segment_names()
        if name not in before
    ]
    assert len(exported) == 1
    segment = exported[0]
    session.close()
    assert segment not in design_shm.active_segment_names()
    assert any(name.lstrip("/") == segment for name, _ in unregistered)
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=segment)
    # A second close is a no-op.
    session.close()


def test_export_attach_round_trip_preserves_every_tensor(design):
    """In-process attach rebuilds byte-equal, read-only design tensors."""
    netlist, annotation, _ = design
    single = resolve_backend("gatspi")[0].prepare(
        netlist, annotation=annotation, config=CONFIG
    )
    packed = single.engine.packed_design
    shared = design_shm.export_packed_design(packed)
    try:
        attachment = design_shm.attach_packed_design(shared.manifest)
        rebuilt = attachment.packed
        assert np.array_equal(rebuilt.tt_flat, packed.tt_flat)
        assert np.array_equal(rebuilt.delay_flat, packed.delay_flat)
        assert rebuilt.net_index == dict(packed.net_index)
        assert len(rebuilt.levels) == len(packed.levels)
        for mine, theirs in zip(rebuilt.levels, packed.levels):
            assert mine.gate_names == theirs.gate_names
            for field_name in design_shm.LEVEL_ARRAY_FIELDS:
                ours = getattr(mine, field_name)
                assert np.array_equal(ours, getattr(theirs, field_name))
                assert not ours.flags.writeable
        attachment.detach()
    finally:
        shared.close()
    assert shared.name not in design_shm.active_segment_names()


def test_export_rejects_device_resident_designs(design):
    """Device tensors have no shared-memory form — export must refuse."""
    from dataclasses import replace

    netlist, annotation, _ = design
    single = resolve_backend("gatspi")[0].prepare(
        netlist, annotation=annotation, config=CONFIG
    )
    on_device = replace(single.engine.packed_design, device="torch")
    with pytest.raises(design_shm.ShmError, match="numpy"):
        design_shm.export_packed_design(on_device)


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------
def test_process_mode_requires_the_numpy_device(design):
    netlist, annotation, _ = design
    backend, _ = resolve_backend("gatspi-sharded")
    with pytest.raises(ValueError, match="numpy"):
        backend.prepare(
            netlist,
            annotation=annotation,
            config=CONFIG.with_updates(device="torch"),
            workers="process",
        )


def test_process_mode_rejects_in_place_edits(design):
    """Worker engines cannot be re-synced, so edits must fail loudly."""
    netlist, _, stimulus = design
    session = _prepare(design, "gatspi-sharded:shards=2,workers=process:2")
    try:
        gate = next(
            instance for instance in netlist.instances.values()
            if instance.cell.inputs
        )
        edit = SetPinDelay(
            gate=gate.name, pin=gate.cell.inputs[0], rise=7.0, fall=9.0
        )
        with pytest.raises(NotImplementedError, match="process-shard"):
            session.apply_edits([edit])
        with pytest.raises(NotImplementedError, match="process-shard"):
            session.rerun([edit], stimulus=stimulus, duration=DURATION)
    finally:
        session.close()


@pytest.mark.parametrize("spec_workers", ["fork", "process:zero", "process:0"])
def test_malformed_worker_specs_rejected(design, spec_workers):
    netlist, annotation, _ = design
    backend, _ = resolve_backend("gatspi-sharded")
    with pytest.raises(ValueError):
        backend.prepare(
            netlist, annotation=annotation, config=CONFIG, workers=spec_workers
        )
