"""Tests for the analytic GPU performance models and device specs."""

import pytest

from repro.core import SimConfig
from repro.gpu import (
    A100,
    ApplicationModel,
    BASELINE_CPU,
    KernelPerfModel,
    KernelWorkload,
    MultiGpuModel,
    T4,
    V100,
    compute_occupancy,
    device_by_name,
    device_comparison_table,
    format_table,
    openmp_kernel_seconds,
    register_spill_penalty,
)


def make_workload(events=2_000_000, gates=50_000, levels=30, activity=0.1):
    return KernelWorkload(
        design="synthetic",
        gate_count=gates,
        levels=levels,
        widest_level=max(1, gates // levels * 2),
        level_sizes=[gates // levels] * levels,
        total_input_events=int(events * 0.7),
        total_output_transitions=int(events * 0.3),
        cycles=10_000,
        activity_factor=activity,
    )


class TestDevices:
    def test_table1_values(self):
        assert V100.sm_count == 80
        assert A100.sm_count == 108
        assert T4.memory_bandwidth_gbps == 320
        assert A100.l2_cache_mb == 40

    def test_lookup(self):
        assert device_by_name("A100") is A100
        with pytest.raises(KeyError):
            device_by_name("H100")

    def test_comparison_table_renders(self):
        text = device_comparison_table()
        assert "SMs" in text and "A100" in text


class TestOccupancy:
    def test_paper_configuration_is_register_limited(self):
        # 64 registers/thread limits the kernel to ~50% occupancy (paper §5).
        result = compute_occupancy(V100, threads_per_block=512, registers_per_thread=64)
        assert result.register_limited
        assert result.occupancy_percent == pytest.approx(50.0, abs=5.0)

    def test_fewer_registers_raise_occupancy(self):
        low = compute_occupancy(V100, 512, 64)
        high = compute_occupancy(V100, 512, 32)
        assert high.occupancy > low.occupancy
        assert high.occupancy_percent > 90.0

    def test_spill_penalty(self):
        assert register_spill_penalty(64) == 1.0
        assert register_spill_penalty(32) > 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compute_occupancy(V100, 0, 64)


class TestKernelModel:
    def test_gpu_beats_cpu_baseline(self):
        model = KernelPerfModel(V100)
        workload = make_workload()
        speedup = model.kernel_speedup(workload)
        assert speedup > 20

    def test_speedup_grows_with_activity(self):
        model = KernelPerfModel(V100)
        low = make_workload(events=50_000, activity=0.001)
        high = make_workload(events=20_000_000, activity=0.5)
        assert model.kernel_speedup(high) > model.kernel_speedup(low)

    def test_device_ordering_matches_table8(self):
        # A paper-scale workload (Design B sized), so launch overhead does not
        # mask the memory-system differences between devices.
        workload = make_workload(events=400_000_000, gates=2_000_000, levels=60,
                                 activity=0.18)
        t4 = KernelPerfModel(T4).predict_kernel_seconds(workload)
        v100 = KernelPerfModel(V100).predict_kernel_seconds(workload)
        a100 = KernelPerfModel(A100).predict_kernel_seconds(workload)
        assert t4 > v100 > a100
        # Table 8: T4 is ~4-7X slower than V100; A100 is 1.2-1.5X faster.
        assert 2.0 < t4 / v100 < 12.0
        assert 1.05 < v100 / a100 < 2.5

    def test_register_ablation_hurts_latency(self):
        workload = make_workload()
        model = KernelPerfModel(V100)
        natural = model.profile(workload, SimConfig(registers_per_thread=64))
        spilled = model.profile(workload, SimConfig(registers_per_thread=32))
        assert spilled.latency_ms > natural.latency_ms
        assert spilled.occupancy_pct > natural.occupancy_pct

    def test_profile_counters_are_sane(self):
        profile = KernelPerfModel(V100).profile(make_workload())
        assert 0 < profile.occupancy_pct <= 100
        assert 0 < profile.l2_hit_rate_pct <= 100
        assert profile.dram_throughput_gbps < V100.memory_bandwidth_gbps
        assert profile.latency_ms > 0
        assert len(profile.as_row()) == 11

    def test_openmp_model_between_cpu_and_gpu(self):
        workload = make_workload()
        model = KernelPerfModel(V100)
        single_cpu = model.baseline_kernel_seconds(workload)
        openmp = openmp_kernel_seconds(workload, num_cpus=40)
        gpu = model.predict_kernel_seconds(workload)
        assert gpu < openmp < single_cpu

    def test_multithread_baseline_faster_than_single(self):
        workload = make_workload()
        model = KernelPerfModel(V100)
        assert (
            model.baseline_multithread_seconds(workload, 16)
            < model.baseline_application_seconds(workload)
        )


class TestApplicationModel:
    def test_phases_positive_and_kernel_dominates_high_activity(self):
        model = ApplicationModel(V100)
        workload = make_workload(events=30_000_000, activity=0.2)
        estimate = model.estimate(workload, source_events=1_000_000, net_count=100_000)
        assert estimate.total > 0
        assert estimate.kernel > estimate.host_to_device
        profile = estimate.to_profile()
        assert profile.total <= estimate.total

    def test_application_speedup_below_kernel_speedup(self):
        """Amdahl: application speedup is bounded by the non-kernel phases."""
        workload = make_workload(events=5_000_000)
        kernel_speedup = KernelPerfModel(V100).kernel_speedup(workload)
        app_speedup = ApplicationModel(V100).application_speedup(
            workload, source_events=2_000_000, net_count=500_000
        )
        assert app_speedup < kernel_speedup


class TestMultiGpuModel:
    def test_scaling_curve_shape(self):
        model = MultiGpuModel(V100)
        workload = make_workload(events=50_000_000)
        points = model.scaling_curve(workload, [1, 2, 4, 8])
        times = [p.kernel_seconds for p in points]
        assert times[0] > times[1] > times[2] > times[3]
        # Sub-linear: 8 GPUs give less than 8X.
        assert times[0] / times[3] < 8.0
        assert points[3].speedup_vs_cpu > points[0].speedup_vs_cpu

    def test_format_table(self):
        text = format_table(["a", "b"], [["1", "2"], ["3", "4"]])
        assert "a" in text and "3" in text
