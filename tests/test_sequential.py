"""Clocked sequential simulation: differential, semantic, and error tests.

The clocked update loop (:mod:`repro.core.clocked`) drives *one* shared
frame pipeline regardless of executor, so the contract here is strict:

* every gatspi variant, both sharded executors, and the streaming fold
  must be **bit-identical** (waveforms where available, toggle counts and
  final register state everywhere) to each other and to the ``event``
  oracle;
* the functional behavior (counter counts, LFSR sequences, shift chains
  shift, enables freeze, async resets clear mid-cycle) must match a plain
  Python model of the same registers.

The error-path half pins the plan/stimulus validation taxonomy:
latch-bearing designs, registerless designs, gated or multiple clocks,
clock/Q nets supplied as stimulus, and waveform-less configs must all be
rejected with the documented exception types before any frame runs.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_design
from repro.api import get_backend, resolve_backend
from repro.core import SimConfig
from repro.core.clocked import ClockedSimulationError, plan_clocked_run
from repro.core.contract import StimulusError
from repro.core.register_file import RegisterFileError
from repro.core.waveform import Waveform
from repro.core.xp import available_array_backends
from repro.netlist import NetlistBuilder, load_fixture
from repro.testing import build_counter, build_lfsr, build_shift_register

PERIOD = 1000
DEVICES = available_array_backends()

#: Specs that must be bit-identical on waveforms, toggle counts, and state.
EXACT_SPECS = (
    "gatspi",
    "gatspi:kernel=scalar",
    "gatspi-sharded:shards=2",
    "gatspi-sharded:shards=2,workers=process",
)


def _session(spec, netlist, device=None, **config_kw):
    backend, options = resolve_backend(spec)
    config = SimConfig(clock_period=PERIOD, store_waveforms=True, **config_kw)
    if device is not None and spec.startswith("gatspi"):
        config = config.with_updates(device=device)
    return backend.prepare(netlist, config=config, **options)


def _state_of(result):
    return dict(result.register_state)


def _toggles(netlist, result):
    return {net: result.toggle_counts.get(net, 0) for net in sorted(netlist.nets)}


# ---------------------------------------------------------------------------
# Python reference models
# ---------------------------------------------------------------------------


def counter_reference(bits, init, cycles):
    """Final state of an up-counter after ``cycles`` captures."""
    return (init + cycles) % (1 << bits)


def lfsr_reference(bits, taps, init, cycles):
    """Final per-stage state of the XNOR-feedback Fibonacci LFSR."""
    state = [(init >> i) & 1 for i in range(bits)]
    for _ in range(cycles):
        fb = 0
        for tap in taps:
            fb ^= state[tap - 1]
        state = [1 - fb] + state[:-1]
    return state


# ---------------------------------------------------------------------------
# Differential: every executor agrees with the event oracle
# ---------------------------------------------------------------------------


def _design_matrix():
    counter = build_counter(4)
    lfsr = build_lfsr(8)
    shift = build_shift_register(6, enable=True)
    base = {
        "rst_n": Waveform.from_toggle_array(0, [PERIOD // 2]),
        "din": Waveform.from_toggle_array(0, [PERIOD + 7, 3 * PERIOD - 1, 4 * PERIOD]),
        "en": Waveform.from_toggle_array(1, [5 * PERIOD + PERIOD // 2]),
    }
    return [
        ("counter", counter, {"rst_n": base["rst_n"]}),
        ("lfsr", lfsr, {}),
        ("shift_en", shift, {"din": base["din"], "en": base["en"]}),
    ]


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize(
    "label", [row[0] for row in _design_matrix()]
)
def test_run_cycles_differential(label, device):
    name, netlist, stimulus = next(
        row for row in _design_matrix() if row[0] == label
    )
    cycles = 9
    reference = _session("event", netlist).run_cycles(stimulus, cycles)
    ref_state = _state_of(reference)
    ref_toggles = _toggles(netlist, reference)
    for spec in EXACT_SPECS:
        result = _session(spec, netlist, device=device).run_cycles(
            stimulus, cycles
        )
        assert _state_of(result) == ref_state, f"{name}/{spec} register state"
        assert _toggles(netlist, result) == ref_toggles, f"{name}/{spec} toggles"
        for net in netlist.nets:
            assert result.waveforms[net].changes() is not None
    # gatspi variants additionally agree on full waveforms.
    vector = _session("gatspi", netlist, device=device).run_cycles(
        stimulus, cycles
    )
    scalar = _session("gatspi:kernel=scalar", netlist).run_cycles(
        stimulus, cycles
    )
    for net in netlist.nets:
        assert list(vector.waveforms[net].changes()) == list(
            scalar.waveforms[net].changes()
        ), f"{name}: waveform mismatch on {net}"


@pytest.mark.parametrize("fixture", ["counter", "lfsr", "alu"])
def test_run_cycles_fixture_differential(fixture):
    netlist = load_fixture(fixture)
    stimulus = {}
    for net in netlist.inputs:
        if net == "clk":
            continue
        if net == "rst_n":
            stimulus[net] = Waveform.from_toggle_array(0, [PERIOD // 2])
        else:
            stimulus[net] = Waveform.from_toggle_array(
                0, [k * PERIOD + PERIOD // 3 for k in range(1, 8, 2)]
            )
    cycles = 8
    reference = _session("event", netlist).run_cycles(stimulus, cycles)
    for spec in EXACT_SPECS:
        result = _session(spec, netlist).run_cycles(stimulus, cycles)
        assert _state_of(result) == _state_of(reference), f"{fixture}/{spec}"
        assert _toggles(netlist, result) == _toggles(netlist, reference)


@pytest.mark.parametrize("device", DEVICES)
def test_run_cycles_stream_matches_whole_run(device):
    netlist = build_lfsr(8)
    cycles = 16
    session = _session("gatspi", netlist, device=device)
    whole = session.run_cycles({}, cycles)
    streamed = _session("gatspi", netlist, device=device).run_cycles_stream(
        {}, cycles
    )
    assert streamed.register_state == whole.register_state
    assert streamed.duration == cycles * PERIOD
    assert streamed.stats.streamed is True
    for net in netlist.nets:
        wave = whole.waveforms[net]
        act = streamed.activities[net]
        assert streamed.toggle_counts[net] == whole.toggle_counts[net], net
        assert act.tc == whole.toggle_counts[net], net
        assert act.t1 == wave.duration_at(1, 0, streamed.duration), net
        assert act.t0 + act.t1 == streamed.duration, net


def test_run_cycles_stream_saif_matches_whole_run_totals():
    netlist = build_counter(3)
    stimulus = {"rst_n": Waveform.constant(1)}
    streamed = _session("gatspi", netlist).run_cycles_stream(stimulus, 10)
    text = streamed.saif(design="counter3")
    assert "counter3" in text
    assert streamed.total_toggles() > 0


# ---------------------------------------------------------------------------
# Functional semantics against the Python reference models
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("init,cycles", [(0, 5), (3, 6), (13, 9)])
def test_counter_counts(init, cycles):
    netlist = build_counter(4, init=init)
    stimulus = {"rst_n": Waveform.constant(1)}
    result = _session("gatspi", netlist).run_cycles(stimulus, cycles)
    value = sum(
        result.register_state[f"count_reg[{i}]"] << i for i in range(4)
    )
    assert value == counter_reference(4, init, cycles)


def test_counter_async_reset_mid_cycle():
    """A reset pulse inside frame 3 clears the state; counting resumes."""
    netlist = build_counter(4)
    pulse_at = 3 * PERIOD + 137
    stimulus = {
        "rst_n": Waveform.from_toggle_array(1, [pulse_at, pulse_at + 50])
    }
    cycles = 7
    results = {
        spec: _session(spec, netlist).run_cycles(stimulus, cycles)
        for spec in ("gatspi", "event")
    }
    for spec, result in results.items():
        value = sum(
            result.register_state[f"count_reg[{i}]"] << i for i in range(4)
        )
        # Captures at P..3P count 1,2,3; the pulse clears mid-frame 3, so
        # captures at 4P..7P count 1,2,3,4 again.
        assert value == 4, spec
    assert _toggles(netlist, results["gatspi"]) == _toggles(
        netlist, results["event"]
    )


def test_counter_held_in_reset_stays_zero():
    netlist = build_counter(4, init=9)
    stimulus = {"rst_n": Waveform.constant(0)}
    result = _session("gatspi", netlist).run_cycles(stimulus, 5)
    assert all(
        result.register_state[f"count_reg[{i}]"] == 0 for i in range(4)
    )


@pytest.mark.parametrize("bits,init,cycles", [(8, 0, 20), (8, 0b1011, 11), (4, 0, 7)])
def test_lfsr_sequences(bits, init, cycles):
    netlist = build_lfsr(bits, init=init)
    result = _session("gatspi", netlist).run_cycles({}, cycles)
    taps = {8: (8, 6, 5, 4), 4: (4, 3)}[bits]
    expected = lfsr_reference(bits, taps, init, cycles)
    got = [result.register_state[f"q_reg[{i}]"] for i in range(bits)]
    assert got == expected


def test_shift_register_enable_freezes_chain():
    """EN low freezes every stage; the chain resumes after EN returns."""
    netlist = build_shift_register(4, enable=True)
    # din high for the whole run; enable only during frames 0-1 and 4+.
    stimulus = {
        "din": Waveform.constant(1),
        "en": Waveform.from_toggle_array(1, [2 * PERIOD - 10, 4 * PERIOD - 10]),
    }
    result = _session("gatspi", netlist).run_cycles(stimulus, 6)
    # Captures at P,2P (enabled) load two 1s; 3P,4P frozen; 5P,6P shift on.
    got = [result.register_state[f"sr_reg[{i}]"] for i in range(4)]
    assert got == [1, 1, 1, 1][:2] + got[2:]  # q0,q1 definitely 1
    reference = _session("event", netlist).run_cycles(stimulus, 6)
    assert _state_of(result) == _state_of(reference)


def test_shift_register_plain_shifts_din():
    netlist = build_shift_register(5)
    stimulus = {
        "din": Waveform.from_toggle_array(
            0, [PERIOD // 2, 2 * PERIOD + PERIOD // 2]
        )
    }
    # din: 0 in frame 0 tail? value at capture P is 1 (toggled at P/2).
    result = _session("gatspi", netlist).run_cycles(stimulus, 5)
    got = [result.register_state[f"sr_reg[{i}]"] for i in range(5)]
    # din final values per frame: f0=1, f1=1, f2=0, f3=0, f4=0.
    assert got == [0, 0, 0, 1, 1]


def test_register_state_on_result_and_event_parity():
    netlist = build_lfsr(8)
    gatspi = _session("gatspi", netlist).run_cycles({}, 20)
    event = _session("event", netlist).run_cycles({}, 20)
    assert gatspi.register_state == event.register_state
    assert "".join(
        str(gatspi.register_state[f"q_reg[{i}]"]) for i in range(8)
    ) == "11101001"


def test_stimulus_toggles_exactly_on_clock_edges():
    """PI events landing exactly at k*P belong to the *next* frame."""
    netlist = build_shift_register(3)
    on_edge = {"din": Waveform.from_toggle_array(0, [PERIOD, 2 * PERIOD])}
    result = _session("gatspi", netlist).run_cycles(on_edge, 4)
    reference = _session("event", netlist).run_cycles(on_edge, 4)
    assert _state_of(result) == _state_of(reference)
    # Each capture at kP samples din's frame-(k-1) final value, boundary
    # toggles excluded: captures see 0 (at P), 1 (2P), 0 (3P), 0 (4P) —
    # so only sr_reg[2] still holds the 1 captured at 2P.
    assert result.register_state["sr_reg[0]"] == 0
    assert result.register_state["sr_reg[1]"] == 0
    assert result.register_state["sr_reg[2]"] == 1


def test_run_cycles_engine_entry_point():
    """GatspiEngine.run_cycles mirrors the Session-level API."""
    from repro.core.engine import GatspiEngine

    netlist = build_counter(3)
    engine = GatspiEngine(
        netlist, config=SimConfig(clock_period=PERIOD, store_waveforms=True)
    )
    result = engine.run_cycles({"rst_n": Waveform.constant(1)}, 4)
    value = sum(
        result.register_state[f"count_reg[{i}]"] << i for i in range(3)
    )
    assert value == 4


# ---------------------------------------------------------------------------
# Plan/stimulus validation taxonomy
# ---------------------------------------------------------------------------


def _latch_design():
    builder = NetlistBuilder("latchy")
    clk = builder.input("clk")
    d = builder.input("d")
    q = builder.output("q")
    builder.flop(d, clk, output_net=q, cell_name="LATCH", name="lat0")
    return builder.build()


def test_latch_designs_rejected():
    with pytest.raises(RegisterFileError):
        plan_clocked_run(_latch_design(), PERIOD)


def test_no_registers_rejected():
    builder = NetlistBuilder("comb")
    a, b = builder.input("a"), builder.input("b")
    builder.output("y")
    builder.gate("AND2", [a, b], output_net="y")
    with pytest.raises(ClockedSimulationError, match="no sequential"):
        plan_clocked_run(builder.build(), PERIOD)


def test_gated_clock_rejected():
    builder = NetlistBuilder("gated")
    clk = builder.input("clk")
    en = builder.input("en")
    d = builder.input("d")
    gclk = builder.gate("AND2", [clk, en])
    builder.output("q")
    builder.flop(d, gclk, output_net="q", name="r0")
    with pytest.raises(ClockedSimulationError, match="primary input"):
        plan_clocked_run(builder.build(), PERIOD)


def test_multiple_clock_domains_rejected():
    builder = NetlistBuilder("twoclk")
    clk_a = builder.input("clk_a")
    clk_b = builder.input("clk_b")
    d = builder.input("d")
    builder.output("qa")
    builder.output("qb")
    builder.flop(d, clk_a, output_net="qa", name="ra")
    builder.flop(d, clk_b, output_net="qb", name="rb")
    with pytest.raises(ClockedSimulationError, match="clock"):
        plan_clocked_run(builder.build(), PERIOD)
    # Naming one clock explicitly does not help: the other domain remains.
    with pytest.raises(ClockedSimulationError):
        plan_clocked_run(builder.build(), PERIOD, clock="clk_a")


def test_reset_argument_must_cover_resettable_registers():
    netlist = build_counter(2)
    plan_clocked_run(netlist, PERIOD, reset="rst_n")  # correct net: fine
    with pytest.raises(ClockedSimulationError, match="reset"):
        plan_clocked_run(netlist, PERIOD, reset="clk")


def test_clock_period_too_small_rejected():
    with pytest.raises(ClockedSimulationError, match="period"):
        plan_clocked_run(build_lfsr(4), 1)
    # clk->Q delay must fit inside one period.
    with pytest.raises(ClockedSimulationError, match="period"):
        plan_clocked_run(build_lfsr(4), 20)


def test_clock_net_in_stimulus_rejected():
    netlist = build_lfsr(4)
    with pytest.raises(StimulusError, match="clock"):
        _session("gatspi", netlist).run_cycles(
            {"clk": Waveform.constant(0)}, 3
        )


def test_register_output_in_stimulus_rejected():
    netlist = build_lfsr(4)
    with pytest.raises(StimulusError):
        _session("gatspi", netlist).run_cycles(
            {"q[0]": Waveform.constant(0)}, 3
        )


def test_missing_pi_stimulus_rejected():
    netlist = build_counter(2)  # rst_n must be supplied
    with pytest.raises(StimulusError, match="rst_n"):
        _session("gatspi", netlist).run_cycles({}, 3)


def test_store_waveforms_false_rejected():
    netlist = build_lfsr(4)
    backend, options = resolve_backend("gatspi")
    session = backend.prepare(
        netlist,
        config=SimConfig(clock_period=PERIOD, store_waveforms=False),
    )
    with pytest.raises(ClockedSimulationError, match="store_waveforms"):
        session.run_cycles({}, 3)


def test_config_clock_and_reset_flow_through():
    netlist = build_counter(2)
    backend, _ = resolve_backend("gatspi")
    session = backend.prepare(
        netlist,
        config=SimConfig(
            clock_period=PERIOD,
            store_waveforms=True,
            clock="clk",
            reset="rst_n",
        ),
    )
    result = session.run_cycles({"rst_n": Waveform.constant(1)}, 3)
    value = sum(
        result.register_state[f"count_reg[{i}]"] << i for i in range(2)
    )
    assert value == 3


# ---------------------------------------------------------------------------
# Sequential-aware analysis regressions
# ---------------------------------------------------------------------------


def test_unreachable_cone_sees_through_registers():
    """A live register keeps its D-cone live; a dead register does not.

    Before sequential cells became first-class, ``unreachable_gates``
    treated every flop as an endpoint, so combinational logic feeding a
    *dangling* register was considered observable and the finding below
    did not fire.
    """
    builder = NetlistBuilder("deadreg")
    clk = builder.input("clk")
    a, b = builder.input("a"), builder.input("b")
    builder.output("y")
    builder.gate("BUF", [a], output_net="y")
    dead_d = builder.gate("AND2", [a, b], name="dead_cone_and")
    builder.flop(dead_d, clk, name="dead_reg")  # Q drives nothing
    netlist = builder.build()
    report = analyze_design(netlist)
    unreachable = [
        f for f in report.findings if f.rule_id == "unreachable-cone"
    ]
    assert unreachable, "dead register's input cone must be flagged"
    flagged = {
        name for finding in unreachable for name in finding.instances
    }
    assert "dead_cone_and" in flagged
    # The register itself is covered by dangling-net (its Q has no loads).
    assert any(
        "q" in f.nets[0] for f in report.findings if f.rule_id == "dangling-net"
    )


def test_live_register_cone_not_flagged():
    netlist = build_counter(4)
    report = analyze_design(netlist)
    assert not [
        f for f in report.findings if f.rule_id == "unreachable-cone"
    ]


def test_sequential_datapath_strict_analysis_and_parity():
    from repro.bench.designs import sequential_datapath

    netlist = sequential_datapath(bits=6, stages=2, seed=3)
    report = analyze_design(netlist)
    assert not report.errors
    stimulus = {
        "rst_n": Waveform.from_toggle_array(0, [PERIOD + PERIOD // 4]),
        "en": Waveform.from_toggle_array(0, [2 * PERIOD + 10]),
    }
    gatspi = _session("gatspi", netlist).run_cycles(stimulus, 8)
    event = _session("event", netlist).run_cycles(stimulus, 8)
    assert gatspi.register_state == event.register_state
    assert _toggles(netlist, gatspi) == _toggles(netlist, event)
