"""Conformance suite for the pluggable array-backend (xp) layer.

Every registered backend (numpy always; torch/cupy when installed) must
reproduce the exact numpy semantics the GATSPI data plane relies on for
bit-identical results: ``searchsorted`` side conventions, truncating
float→int64 casts, ``repeat``/``tile`` shapes, scatter assignment, boolean
masking, and the reduction signatures.  Each case computes the expected
value with plain numpy and checks the backend's result after ``to_host``.

Also covers the registry itself (lookup errors, registration rules) and
the device-selection precedence: ``SimConfig(device=...)`` > the
``REPRO_DEVICE`` environment default > ``"numpy"``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SimConfig
from repro.core.xp import (
    ARRAY_ATTRS,
    ARRAY_OPS,
    DEVICE_ENV_VAR,
    HOST,
    ArrayBackendError,
    NumpyBackend,
    UnknownArrayBackendError,
    available_array_backends,
    default_device,
    get_array_backend,
    register_array_backend,
)

BACKENDS = available_array_backends()


@pytest.fixture(params=BACKENDS)
def xp(request):
    return get_array_backend(request.param)


def host(xp, value):
    return xp.to_host(value)


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------
class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in BACKENDS
        assert get_array_backend("numpy") is HOST

    def test_unknown_backend_lists_available(self):
        with pytest.raises(UnknownArrayBackendError) as excinfo:
            get_array_backend("tpu")
        for name in BACKENDS:
            assert name in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ArrayBackendError):
            register_array_backend("numpy", NumpyBackend)

    def test_backend_instances_are_cached(self):
        assert get_array_backend("numpy") is get_array_backend("numpy")

    def test_surface_is_complete(self, xp):
        for op in ARRAY_OPS:
            assert callable(getattr(xp, op)), f"{xp.name} is missing {op}"
        for attr in ARRAY_ATTRS:
            getattr(xp, attr)


class TestDeviceSelection:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(DEVICE_ENV_VAR, raising=False)
        assert default_device() == "numpy"
        monkeypatch.setenv(DEVICE_ENV_VAR, "numpy")
        assert default_device() == "numpy"
        assert SimConfig().device == "numpy"

    def test_config_overrides_env(self, monkeypatch):
        monkeypatch.setenv(DEVICE_ENV_VAR, "numpy")
        for name in BACKENDS:
            assert SimConfig(device=name).device == name

    def test_unregistered_device_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(device="not-a-backend")

    def test_bad_env_device_does_not_break_import(self):
        """A bogus REPRO_DEVICE must surface at SimConfig construction,
        never make the package unimportable (regression: module-level
        PAPER_DEFAULT_CONFIG used to validate the env default at import)."""
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        pythonpath = os.pathsep.join(
            p for p in (src, os.environ.get("PYTHONPATH", "")) if p
        )
        code = (
            "import repro.core\n"
            "from repro.core import SimConfig, PAPER_DEFAULT_CONFIG\n"
            "assert PAPER_DEFAULT_CONFIG.device == 'numpy'\n"
            "try:\n"
            "    SimConfig()\n"
            "except ValueError as err:\n"
            "    assert 'REPRO_DEVICE' in str(err)\n"
            "else:\n"
            "    raise SystemExit('expected ValueError at use time')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={
                **os.environ,
                "REPRO_DEVICE": "not-a-backend",
                "PYTHONPATH": pythonpath,
            },
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr

    def test_oracle_executors_pin_numpy(self):
        device = BACKENDS[-1]  # any registered backend
        assert SimConfig(device=device).effective_device() == device
        assert (
            SimConfig(device=device, kernel="scalar").effective_device()
            == "numpy"
        )
        assert (
            SimConfig(device=device, restructure="python").effective_device()
            == "numpy"
        )


# ----------------------------------------------------------------------
# Construction and the host boundary
# ----------------------------------------------------------------------
class TestConstruction:
    def test_asarray_roundtrip(self, xp):
        src = np.asarray([3, 1, -1, 2**40], dtype=np.int64)
        arr = xp.asarray(src, dtype=xp.int64)
        np.testing.assert_array_equal(host(xp, arr), src)

    def test_asarray_from_list(self, xp):
        arr = xp.asarray([5, 7], dtype=xp.int64)
        assert host(xp, arr).tolist() == [5, 7]

    def test_zeros_empty_full_arange(self, xp):
        assert host(xp, xp.zeros(3, dtype=xp.int64)).tolist() == [0, 0, 0]
        assert host(xp, xp.zeros((2, 2), dtype=xp.float64)).shape == (2, 2)
        assert xp.size(xp.empty(4, dtype=xp.int64)) == 4
        assert host(xp, xp.full(2, 7, dtype=xp.int64)).tolist() == [7, 7]
        assert host(xp, xp.full((2, 1), -1, dtype=xp.int64)).tolist() == [[-1], [-1]]
        assert host(xp, xp.arange(4, dtype=xp.int64)).tolist() == [0, 1, 2, 3]

    def test_int8_truth_table_gather(self, xp):
        tt = xp.asarray(np.asarray([0, 1, 1, 0], dtype=np.int8))
        idx = xp.asarray([3, 0, 1], dtype=xp.int64)
        gathered = xp.astype(tt[idx], xp.int64)
        assert host(xp, gathered).tolist() == [0, 0, 1]

    def test_size(self, xp):
        assert xp.size(xp.zeros(0, dtype=xp.int64)) == 0
        assert xp.size(xp.zeros((3, 4), dtype=xp.int64)) == 12


# ----------------------------------------------------------------------
# Exact numpy semantics the kernel depends on
# ----------------------------------------------------------------------
class TestSemantics:
    def test_searchsorted_sides(self, xp):
        a = xp.asarray([10, 20, 20, 30], dtype=xp.int64)
        v = xp.asarray([20, 25, 5], dtype=xp.int64)
        left = host(xp, xp.searchsorted(a, v, side="left"))
        right = host(xp, xp.searchsorted(a, v, side="right"))
        assert left.tolist() == [1, 3, 0]
        assert right.tolist() == [3, 3, 0]

    def test_searchsorted_2d_queries(self, xp):
        a = xp.asarray([0, 10, 20, 30], dtype=xp.int64)
        v = xp.asarray([[5, 10], [30, 40]], dtype=xp.int64)
        out = host(xp, xp.searchsorted(a, v, side="right"))
        assert out.tolist() == [[1, 2], [4, 4]]

    def test_astype_truncates_toward_zero(self, xp):
        f = xp.asarray([1.9, 2.0, 0.999, 17.5], dtype=xp.float64)
        assert host(xp, xp.astype(f, xp.int64)).tolist() == [1, 2, 0, 17]

    def test_cumsum_and_diff(self, xp):
        a = xp.asarray([3, 1, 4], dtype=xp.int64)
        assert host(xp, xp.cumsum(a)).tolist() == [3, 4, 8]
        assert host(xp, xp.diff(xp.cumsum(a))).tolist() == [1, 4]
        assert xp.size(xp.cumsum(a[:0])) == 0

    def test_repeat_array_counts(self, xp):
        a = xp.asarray([7, 8, 9], dtype=xp.int64)
        counts = xp.asarray([2, 0, 3], dtype=xp.int64)
        assert host(xp, xp.repeat(a, counts)).tolist() == [7, 7, 9, 9, 9]

    def test_repeat_rows(self, xp):
        m = xp.asarray([[1, 2], [3, 4]], dtype=xp.int64)
        out = host(xp, xp.repeat(m, 2, axis=0))
        assert out.tolist() == [[1, 2], [1, 2], [3, 4], [3, 4]]

    def test_tile_and_broadcast(self, xp):
        a = xp.asarray([1, 2], dtype=xp.int64)
        assert host(xp, xp.tile(a, 3)).tolist() == [1, 2, 1, 2, 1, 2]
        b = host(xp, xp.broadcast_to(a, (2, 2)))
        assert b.tolist() == [[1, 2], [1, 2]]

    def test_where_with_scalars(self, xp):
        cond = xp.asarray([1, 0, 2], dtype=xp.int64)  # int condition
        a = xp.asarray([10, 20, 30], dtype=xp.int64)
        assert host(xp, xp.where(cond, a, 0)).tolist() == [10, 0, 30]
        f = xp.asarray([1.0, 2.0, 3.0], dtype=xp.float64)
        out = host(xp, xp.where(cond == 0, f, xp.inf))
        assert out[1] == 2.0 and np.isinf(out[0]) and np.isinf(out[2])

    def test_minimum_maximum_scalar_clamp(self, xp):
        a = xp.asarray([-5, 3, 99], dtype=xp.int64)
        assert host(xp, xp.minimum(a, 10)).tolist() == [-5, 3, 10]
        assert host(xp, xp.maximum(a, 0)).tolist() == [0, 3, 99]
        b = xp.asarray([0, 5, 50], dtype=xp.int64)
        assert host(xp, xp.minimum(a, b)).tolist() == [-5, 3, 50]

    def test_reductions(self, xp):
        m = xp.asarray([[1.0, 5.0], [4.0, 2.0]], dtype=xp.float64)
        assert host(xp, xp.min(m, axis=1)).tolist() == [1.0, 2.0]
        assert host(xp, xp.max(m, axis=1)).tolist() == [5.0, 4.0]
        assert host(xp, xp.sum(m, axis=1)).tolist() == [6.0, 6.0]
        assert int(xp.sum(xp.asarray([1, 2], dtype=xp.int64))) == 3
        assert float(xp.min(m)) == 1.0 and float(xp.max(m)) == 5.0

    def test_any_all_truthiness(self, xp):
        t = xp.asarray([0, 1], dtype=xp.int64)
        assert bool(xp.any(t != 0))
        assert not bool(xp.all(t != 0))
        empty = t[:0]
        assert not bool(xp.any(empty != 0))
        assert bool(xp.all(empty != 0))

    def test_isfinite(self, xp):
        f = xp.where(
            xp.asarray([1, 0], dtype=xp.int64),
            xp.asarray([1.5, 2.5], dtype=xp.float64),
            xp.inf,
        )
        assert host(xp, xp.isfinite(f)).tolist() == [True, False]

    def test_scatter_assignment(self, xp):
        buf = xp.zeros(6, dtype=xp.int64)
        idx = xp.asarray([4, 1, 2], dtype=xp.int64)
        buf[idx] = xp.asarray([40, 10, 20], dtype=xp.int64)
        assert host(xp, buf).tolist() == [0, 10, 20, 0, 40, 0]
        buf[1:3] = xp.asarray([-1, -2], dtype=xp.int64)
        assert host(xp, buf).tolist() == [0, -1, -2, 0, 40, 0]

    def test_boolean_mask_read_and_write(self, xp):
        a = xp.asarray([1, 2, 3, 4], dtype=xp.int64)
        mask = a > 2
        assert host(xp, a[mask]).tolist() == [3, 4]
        a[mask] = 0
        assert host(xp, a).tolist() == [1, 2, 0, 0]

    def test_block_scatter_with_broadcast_indices(self, xp):
        table = xp.full((3, 2), -1, dtype=xp.int64)
        rows = xp.asarray([2, 0], dtype=xp.int64)
        cols = xp.asarray([0, 1], dtype=xp.int64)
        table[rows[:, None], cols[None, :]] = xp.asarray(
            [[1, 2], [3, 4]], dtype=xp.int64
        )
        assert host(xp, table).tolist() == [[3, 4], [-1, -1], [1, 2]]
        gathered = table[rows[:, None], cols[None, :]]
        assert host(xp, gathered).tolist() == [[1, 2], [3, 4]]

    def test_transpose_reshape(self, xp):
        m = xp.asarray(np.arange(12).reshape(2, 3, 2), dtype=xp.int64)
        t = xp.transpose(m, (0, 2, 1))
        expected = np.transpose(np.arange(12).reshape(2, 3, 2), (0, 2, 1))
        np.testing.assert_array_equal(host(xp, t.reshape(4, 3)), expected.reshape(4, 3))

    def test_copy_is_independent(self, xp):
        a = xp.asarray([1, 2], dtype=xp.int64)
        b = xp.copy(a)
        b[0] = 99
        assert host(xp, a).tolist() == [1, 2]

    def test_concatenate(self, xp):
        a = xp.asarray([1], dtype=xp.int64)
        b = xp.asarray([2, 3], dtype=xp.int64)
        assert host(xp, xp.concatenate([a, b])).tolist() == [1, 2, 3]

    def test_bool_int_promotion_in_arithmetic(self, xp):
        # storage_words relies on int64 + bool promoting to int64.
        counts = xp.asarray([0, 2], dtype=xp.int64)
        markers = xp.asarray([1, 0], dtype=xp.int64) != 0
        total = 2 + counts + markers
        assert host(xp, total).tolist() == [3, 4]

    def test_augmented_fancy_index_add(self, xp):
        a = xp.zeros(4, dtype=xp.int64)
        idx = xp.asarray([0, 2], dtype=xp.int64)
        a[idx] += xp.asarray([5, 7], dtype=xp.int64)
        assert host(xp, a).tolist() == [5, 0, 7, 0]


# ----------------------------------------------------------------------
# The kernel itself as the end-to-end conformance check
# ----------------------------------------------------------------------
class TestLevelKernelOnBackend:
    def test_simulate_level_matches_numpy(self, xp):
        """The full lock-step kernel produces identical toggles per backend."""
        from repro.core import WaveformPool, Waveform
        from repro.core.vector_kernel import simulate_level
        from repro.testing import build_random_netlist
        from repro.core.engine import GatspiEngine

        netlist = build_random_netlist(num_inputs=4, num_gates=12, seed=3)
        engine = GatspiEngine(netlist)
        engine.compile()
        packed_host = engine.packed_design
        packed = packed_host.to_device(xp)
        level = packed.levels[0]
        level_host = packed_host.levels[0]

        def run(backend, design, lvl):
            pool = WaveformPool(
                1 << 16,
                xp=backend,
                net_index=design.net_index,
                window_indices=[0],
            )
            for i, net in enumerate(netlist.source_nets()):
                pool.store_waveform(
                    net, 0, Waveform.from_initial_and_toggles(i & 1, [10 + 7 * i, 40 + 9 * i])
                )
            pool.store_padding_waveform()
            pointers, caps = pool.gather_level_inputs(lvl.input_net_ids)
            result = simulate_level(
                pool.data, pointers, design, lvl, 1, caps, xp=backend
            )
            return (
                backend.to_host(result.initial_values).tolist(),
                backend.to_host(result.toggle_counts).tolist(),
                backend.to_host(result.toggle_buffer).tolist(),
            )

        assert run(xp, packed, level) == run(HOST, packed_host, level_host)
