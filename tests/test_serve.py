"""Tests for the concurrent serving front end (`repro.serve`).

Covers the subsystem's contract surface — admission, micro-batching,
session reuse, failure isolation, lifecycle — plus concurrency-marked
stress holding concurrent mixed-design traffic to the serial reference
results, through both the plain ``gatspi`` backend and the window-axis
sharded ``gatspi-sharded`` backend.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    BackendCapabilities,
    SimBackend,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.core import SimConfig, clear_compile_cache
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.serve import (
    ServeRequest,
    ServiceClosedError,
    ServiceOverloadedError,
    SimulationService,
)
from repro.serve.service import session_key
from repro.testing import build_random_netlist, build_random_stimulus

DURATION = 6_000
CONFIG = SimConfig(clock_period=500, cycle_parallelism=4)


@pytest.fixture(autouse=True)
def fresh_compile_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def _design(seed: int, num_gates: int = 24):
    netlist = build_random_netlist(num_inputs=5, num_gates=num_gates, seed=seed)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=seed).build(netlist)
    )
    stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 100)
    return netlist, annotation, stimulus


def _request(seed: int, backend: str = "gatspi", tag=None) -> ServeRequest:
    netlist, annotation, stimulus = _design(seed)
    return ServeRequest(
        netlist=netlist,
        stimulus=stimulus,
        backend=backend,
        annotation=annotation,
        config=CONFIG,
        duration=DURATION,
        tag=tag,
    )


class TestRequestRoundTrip:
    def test_submit_resolves_to_response(self):
        request = _request(1)
        expected = (
            get_backend("gatspi")
            .prepare(request.netlist, annotation=request.annotation, config=CONFIG)
            .run(request.stimulus, duration=DURATION)
        )
        with SimulationService(max_workers=2) as service:
            response = service.submit(request).result(timeout=60)
        assert response.result.toggle_counts == expected.toggle_counts
        assert response.backend == "gatspi"
        assert response.queue_seconds >= 0
        assert response.run_seconds > 0
        assert response.batch_size >= 1
        assert not response.session_reused  # first request prepared it

    def test_run_is_synchronous_submit(self):
        request = _request(2, tag="sync")
        with SimulationService(max_workers=1) as service:
            response = service.run(request)
        assert response.tag == "sync"
        assert response.result.total_toggles() > 0

    def test_missing_horizon_rejected_at_submit(self):
        netlist, annotation, stimulus = _design(3)
        with SimulationService(max_workers=1) as service:
            with pytest.raises(ValueError):
                service.submit(
                    ServeRequest(
                        netlist=netlist, stimulus=stimulus, annotation=annotation
                    )
                )

    def test_sharded_backend_through_service_matches_single(self):
        request = _request(4, backend="gatspi-sharded:shards=2,workers=2")
        expected = (
            get_backend("gatspi")
            .prepare(request.netlist, annotation=request.annotation, config=CONFIG)
            .run(request.stimulus, duration=DURATION)
        )
        with SimulationService(max_workers=2) as service:
            response = service.run(request)
        assert response.result.stats.shards == 2
        assert response.result.toggle_counts == expected.toggle_counts
        for net in expected.waveforms:
            assert response.result.waveforms[net] == expected.waveforms[net]


class TestMicroBatching:
    def test_same_design_burst_shares_one_session(self):
        request = _request(5)
        with SimulationService(max_workers=2) as service:
            futures = [service.submit(request) for _ in range(10)]
            responses = [f.result(timeout=120) for f in futures]
        stats = service.stats()
        # One prepare served the whole burst...
        assert stats["session_misses"] == 1
        assert stats["session_hits"] + stats["session_misses"] <= stats["batches"] * 2
        # ...and every response carries the same session identity.
        assert len({r.session_key for r in responses}) == 1
        assert any(r.batch_size > 1 for r in responses) or stats["batches"] > 1
        totals = {r.result.total_toggles() for r in responses}
        assert len(totals) == 1

    def test_structurally_identical_designs_share_a_fingerprint(self):
        """Two equal-content netlist objects batch onto one session."""
        a = _request(6)
        netlist, annotation, stimulus = _design(6)
        b = ServeRequest(
            netlist=netlist, stimulus=stimulus, annotation=annotation,
            config=CONFIG, duration=DURATION,
        )
        assert a.netlist is not b.netlist
        assert session_key(a) == session_key(b)
        with SimulationService(max_workers=2) as service:
            ra = service.submit(a).result(timeout=60)
            rb = service.submit(b).result(timeout=60)
        assert ra.session_key == rb.session_key
        assert service.stats()["session_misses"] == 1

    def test_same_design_burst_fuses_on_the_sharded_backend(self):
        """Micro-batches on gatspi-sharded execute as fused engine runs.

        A blocked worker guarantees the burst is still queued when the
        dispatcher groups it, so the batch reaches ``run_many`` together;
        every response must match the standalone run bit for bit.
        """
        netlist, annotation, _ = _design(9)
        # Distinct stimuli per request: identical in-flight requests now
        # coalesce onto one run instead of fusing (their own test below),
        # so fusion is exercised with a burst that shares the design but
        # not the stimulus.
        stimuli = [
            build_random_stimulus(netlist, DURATION, seed=900 + i)
            for i in range(6)
        ]
        reference = get_backend("gatspi").prepare(
            netlist, annotation=annotation, config=CONFIG
        )
        expected = [reference.run(s, duration=DURATION) for s in stimuli]

        def request_for(stimulus):
            return ServeRequest(
                netlist=netlist,
                stimulus=stimulus,
                backend="gatspi-sharded",
                annotation=annotation,
                config=CONFIG,
                duration=DURATION,
            )

        with SimulationService(max_workers=1, queue_size=32) as service:
            # Occupy the single worker so the burst accumulates.
            head = service.submit(request_for(stimuli[0]))
            burst = [service.submit(request_for(s)) for s in stimuli[1:]]
            responses = [head.result(timeout=120)] + [
                f.result(timeout=120) for f in burst
            ]
        assert any(r.fused for r in responses), "burst never fused"
        fused = [r for r in responses if r.fused]
        assert all(r.result.stats.fused_requests > 1 for r in fused)
        for response, reference_result in zip(responses, expected):
            assert response.result.toggle_counts == reference_result.toggle_counts
            for net in reference_result.waveforms:
                assert response.result.waveforms[net] == reference_result.waveforms[net]

    def test_identical_inflight_requests_coalesce_onto_one_run(self):
        request = _request(9, backend="gatspi-sharded")
        expected = (
            get_backend("gatspi")
            .prepare(request.netlist, annotation=request.annotation, config=CONFIG)
            .run(request.stimulus, duration=DURATION)
        )
        with SimulationService(max_workers=1, queue_size=32) as service:
            head = service.submit(request)
            burst = [service.submit(request) for _ in range(5)]
            responses = [head.result(timeout=120)] + [
                f.result(timeout=120) for f in burst
            ]
            stats = service.stats()
        assert any(r.coalesced for r in responses), "burst never coalesced"
        assert stats["coalesced"] >= 1
        # Coalesced responses share the leader's bit-identical result.
        for response in responses:
            assert response.result.toggle_counts == expected.toggle_counts
            for net in expected.waveforms:
                assert response.result.waveforms[net] == expected.waveforms[net]

    def test_different_designs_use_distinct_sessions(self):
        with SimulationService(max_workers=2) as service:
            first = service.submit(_request(7))
            second = service.submit(_request(8))
            responses = [first.result(timeout=60), second.result(timeout=60)]
        assert responses[0].session_key != responses[1].session_key
        assert service.stats()["session_misses"] == 2

    def test_session_cache_eviction_falls_back_to_compile_cache(self):
        requests = [_request(seed) for seed in (10, 11, 12)]
        with SimulationService(max_workers=1, session_cache_size=1) as service:
            for request in requests:
                service.run(request)
            # Every design was a service-session miss (cache size 1)...
            assert service.stats()["session_misses"] == 3
            # ...but re-serving the first only needs a cheap re-prepare.
            before = time.perf_counter()
            service.run(requests[0])
            assert time.perf_counter() - before < 30
        assert service.stats()["cached_sessions"] <= 1


class _Gate:
    """A registered backend whose runs block on an event (test rig)."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()


@pytest.fixture
def blocking_backend():
    gate = _Gate()

    class BlockingSession:
        backend_name = "blocking-test"

        def attach_analysis(self, report):
            pass

        def run(self, stimulus, cycles=None, duration=None):
            gate.entered.set()
            if not gate.release.wait(timeout=30):
                raise TimeoutError("test gate never released")
            from repro.core.results import SimulationResult

            return SimulationResult(duration=duration or 0)

    class BlockingBackend(SimBackend):
        name = "blocking-test"
        capabilities = BackendCapabilities(description="test rig")

        def _prepare(self, netlist, annotation=None, config=None, **options):
            return BlockingSession()

    register_backend("blocking-test", BlockingBackend)
    try:
        yield gate
    finally:
        gate.release.set()
        unregister_backend("blocking-test")


class TestAdmissionControl:
    def test_overload_fails_fast_when_queue_is_full(self, blocking_backend):
        netlist, annotation, stimulus = _design(13)

        def blocked_request():
            return ServeRequest(
                netlist=netlist, stimulus=stimulus, backend="blocking-test",
                annotation=annotation, duration=DURATION,
            )

        service = SimulationService(max_workers=1, queue_size=2)
        try:
            # Saturate the worker and the in-flight permits (2 * workers),
            # then fill the bounded queue behind them.
            inflight = [service.submit(blocked_request()) for _ in range(2)]
            assert blocking_backend.entered.wait(timeout=10)
            deadline = time.time() + 10
            queued = []
            overloaded = False
            while time.time() < deadline and not overloaded:
                try:
                    queued.append(
                        service.submit(blocked_request(), block=False)
                    )
                except ServiceOverloadedError:
                    overloaded = True
            assert overloaded, "bounded queue never pushed back"
            assert service.stats()["rejected"] >= 1
            # Releasing the gate drains everything that was admitted.
            blocking_backend.release.set()
            for future in inflight + queued:
                assert future.result(timeout=30) is not None
        finally:
            blocking_backend.release.set()
            service.close()

    def test_per_client_quota_bounds_in_flight_requests(self, blocking_backend):
        """A client at its quota is rejected; other clients stay admitted.

        The quota counts *in-flight* requests (submitted, not yet done):
        with ``per_client_quota=1`` and the worker blocked on the first
        request, the same client's second submit must fail fast with
        ``QuotaExceededError`` while a differently named client's request
        is still admitted; completing the first request returns the
        permit.
        """
        from repro.serve import QuotaExceededError

        netlist, annotation, stimulus = _design(16)

        def request_for(client):
            return ServeRequest(
                netlist=netlist, stimulus=stimulus, backend="blocking-test",
                annotation=annotation, duration=DURATION, client=client,
            )

        service = SimulationService(
            max_workers=1, queue_size=8, per_client_quota=1
        )
        try:
            first = service.submit(request_for("alice"))
            assert blocking_backend.entered.wait(timeout=10)
            with pytest.raises(QuotaExceededError):
                service.submit(request_for("alice"))
            assert service.stats()["quota_rejected"] == 1
            other = service.submit(request_for("bob"))
            blocking_backend.release.set()
            assert first.result(timeout=30) is not None
            assert other.result(timeout=30) is not None
            # The permit came back with the completed request.
            again = service.submit(request_for("alice"))
            assert again.result(timeout=30) is not None
        finally:
            blocking_backend.release.set()
            service.close()

    def test_queued_request_can_be_cancelled(self, blocking_backend):
        netlist, annotation, stimulus = _design(14)
        request = ServeRequest(
            netlist=netlist, stimulus=stimulus, backend="blocking-test",
            annotation=annotation, duration=DURATION,
        )
        service = SimulationService(max_workers=1, queue_size=8)
        try:
            first = service.submit(request)
            assert blocking_backend.entered.wait(timeout=10)
            victim = service.submit(request)
            assert victim.cancel()
            blocking_backend.release.set()
            assert first.result(timeout=30) is not None
            assert victim.cancelled()
        finally:
            blocking_backend.release.set()
            service.close()


class TestFailureIsolationAndLifecycle:
    def test_bad_request_fails_only_its_own_future(self):
        good = _request(15)
        netlist, annotation, _ = _design(15)
        bad = ServeRequest(
            netlist=netlist, stimulus={}, annotation=annotation,
            config=CONFIG, duration=DURATION,
        )
        with SimulationService(max_workers=2) as service:
            bad_future = service.submit(bad)
            good_future = service.submit(good)
            with pytest.raises(Exception):
                bad_future.result(timeout=60)
            assert good_future.result(timeout=60).result.total_toggles() > 0
        stats = service.stats()
        assert stats["failed"] == 1
        assert stats["completed"] == 1

    def test_unknown_backend_fails_the_future_not_the_service(self):
        request = _request(16, backend="no-such-backend")
        with SimulationService(max_workers=1) as service:
            future = service.submit(request)
            with pytest.raises(LookupError):
                future.result(timeout=60)
            # Prepare failures are not cached: the service stays usable.
            ok = service.run(_request(16))
            assert ok.result.total_toggles() > 0

    def test_close_drains_queued_requests(self):
        request = _request(17)
        service = SimulationService(max_workers=1)
        futures = [service.submit(request) for _ in range(4)]
        service.close()
        for future in futures:
            assert future.result(timeout=60).result.total_toggles() > 0
        with pytest.raises(ServiceClosedError):
            service.submit(request)

    def test_close_is_idempotent(self):
        service = SimulationService(max_workers=1)
        service.close()
        service.close()


@pytest.mark.concurrency
class TestServiceConcurrency:
    """Mixed-design concurrent traffic stays consistent with serial runs."""

    def test_concurrent_clients_mixed_designs_and_backends(self):
        seeds = (20, 21, 22)
        designs = {seed: _design(seed) for seed in seeds}
        expected = {}
        for seed, (netlist, annotation, stimulus) in designs.items():
            expected[seed] = (
                get_backend("gatspi")
                .prepare(netlist, annotation=annotation, config=CONFIG)
                .run(stimulus, duration=DURATION)
                .toggle_counts
            )

        def client(index: int):
            seed = seeds[index % len(seeds)]
            netlist, annotation, stimulus = designs[seed]
            backend = "gatspi" if index % 2 == 0 else "gatspi-sharded:shards=2"
            response = service.run(
                ServeRequest(
                    netlist=netlist, stimulus=stimulus, backend=backend,
                    annotation=annotation, config=CONFIG, duration=DURATION,
                    tag=str(seed),
                )
            )
            return seed, response

        with SimulationService(max_workers=4, queue_size=64) as service:
            with ThreadPoolExecutor(max_workers=8) as clients:
                outcomes = list(clients.map(client, range(24)))

        for seed, response in outcomes:
            assert response.result.toggle_counts == expected[seed], (
                f"design seed={seed} diverged under concurrent serving"
            )
        stats = service.stats()
        assert stats["submitted"] == 24
        assert stats["completed"] == 24
        assert stats["failed"] == 0
        # gatspi and gatspi-sharded need one prepared session per design.
        assert stats["session_misses"] == len(seeds) * 2

    def test_counters_conserve_under_concurrent_submit(self):
        request = _request(23)
        with SimulationService(max_workers=4, queue_size=64) as service:
            with ThreadPoolExecutor(max_workers=8) as clients:
                futures = list(
                    clients.map(
                        lambda _: service.submit(request).result(timeout=120),
                        range(16),
                    )
                )
        assert len(futures) == 16
        stats = service.stats()
        assert stats["submitted"] == stats["completed"] + stats["failed"]
        assert stats["failed"] == 0
        assert stats["session_misses"] == 1


# ======================================================================
# Admission semantics (ISSUE 8 bugfixes)
# ======================================================================
def _error_but_runnable_design():
    """A design with an error-severity finding that still simulates fine.

    The dangling primary output ``z`` trips the ``unconnected-output``
    rule (ERROR severity), but it has no driver and no loads, so
    ``prepare()``/``run()`` simulate the rest of the design happily —
    exactly the shape the admission gate must not bounce under the
    default ``analysis="warn"``.
    """
    from repro.netlist import Netlist

    netlist = Netlist("floatout")
    netlist.add_input("a")
    netlist.add_output("y")
    netlist.add_output("z")
    netlist.add_instance("INV", "u0", {"A": "a", "Y": "y"})
    stimulus = build_random_stimulus(netlist, DURATION, seed=99)
    return netlist, stimulus


class TestAdmissionSemantics:
    def test_warn_mode_serves_error_design_with_report_attached(self):
        # Regression (pre-fix: _check_admission rejected for every mode
        # other than "off", contradicting SimConfig's documented "warn"
        # semantics of attach-report-and-proceed).
        netlist, stimulus = _error_but_runnable_design()
        with SimulationService(max_workers=1) as service:
            response = service.run(
                ServeRequest(netlist=netlist, stimulus=stimulus, duration=DURATION)
            )
        assert response.result.total_toggles() > 0
        assert response.analysis_report is not None
        assert response.analysis_report.has_errors
        assert response.analysis_report.findings_for("unconnected-output")

    def test_strict_mode_still_rejects_error_design(self):
        from repro.serve import DesignRejectedError

        netlist, stimulus = _error_but_runnable_design()
        with SimulationService(max_workers=1) as service:
            with pytest.raises(DesignRejectedError) as excinfo:
                service.submit(
                    ServeRequest(
                        netlist=netlist,
                        stimulus=stimulus,
                        duration=DURATION,
                        config=SimConfig(analysis="strict"),
                    )
                )
        assert excinfo.value.report.has_errors

    def test_warn_mode_attaches_report_on_clean_design_too(self):
        request = _request(31)
        assert (request.config or SimConfig()).analysis == "warn"
        with SimulationService(max_workers=1) as service:
            response = service.run(request)
        assert response.analysis_report is not None
        assert not response.analysis_report.has_errors

    def test_repeat_submission_evaluates_zero_rules(self):
        # The submit docstring promises fingerprint-cached admission
        # analysis: a second submission of a known design must be a pure
        # cache hit, with no additional rule evaluation.
        from repro.analysis import analysis_cache_info, clear_analysis_cache

        clear_analysis_cache()
        request = _request(32)
        with SimulationService(max_workers=1) as service:
            service.run(request)
            runs_after_first = analysis_cache_info()["runs"]
            hits_after_first = analysis_cache_info()["hits"]
            service.run(request)
            info = analysis_cache_info()
        assert info["runs"] == runs_after_first
        assert info["hits"] > hits_after_first


class TestSessionEvictionPinning:
    def test_base_session_with_queued_delta_work_survives_eviction(self):
        # Regression (pre-fix: the session-LRU eviction loop ignored
        # _active_keys/_pending_groups, so eviction pressure while a
        # delta batch was dispatched-but-unfinished dropped the base
        # session and turned the delta into UnknownBaseDesignError).
        from repro.core.edits import SetPinDelay

        base_request = _request(41)
        with SimulationService(max_workers=1, session_cache_size=1) as service:
            base = service.run(base_request)
            base_key = base.session_key
            # Simulate a dispatched-but-unfinished delta batch holding the
            # base key, exactly what _run_group's bookkeeping does while a
            # batch for the key executes.
            with service._group_lock:
                service._active_keys.add(base_key)
            try:
                service.run(_request(42))  # eviction pressure (cache size 1)
                service.run(_request(43))
            finally:
                with service._group_lock:
                    service._active_keys.discard(base_key)
            gate = next(
                inst
                for inst in base_request.netlist.instances.values()
                if inst.cell.inputs
            )
            delta = service.run(
                ServeRequest(
                    base_key=base_key,
                    edits=(
                        SetPinDelay(
                            gate=gate.name,
                            pin=gate.cell.inputs[0],
                            rise=7.0,
                            fall=9.0,
                        ),
                    ),
                    stimulus=base_request.stimulus,
                    duration=DURATION,
                )
            )
        assert delta.session_key == base_key
        assert delta.result.total_toggles() > 0
