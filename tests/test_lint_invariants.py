"""Tests for ``tools/lint_invariants.py``.

Each rule is exercised against a seeded-violation fixture under
``tests/data/lint_fixtures/`` (so the detection logic is pinned, not just
the happy path), and the linter as a whole must pass on the real
``src/repro`` tree — that assertion is what makes the CI lint job's
green meaningful.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "data" / "lint_fixtures"


def _load_linter():
    """Import ``tools/lint_invariants.py`` by path (tools/ is not a package)."""
    path = REPO_ROOT / "tools" / "lint_invariants.py"
    spec = importlib.util.spec_from_file_location("lint_invariants", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("lint_invariants", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def linter():
    return _load_linter()


class TestXpPurityRule:
    def test_seeded_numpy_usage_reported(self, linter):
        violations = linter.lint_file(FIXTURES / "core" / "engine.py")
        rules = [v.rule for v in violations]
        assert rules.count("XP001") >= 3  # import, from-import, np. use
        lines = {v.line for v in violations if v.rule == "XP001"}
        assert 7 in lines  # import numpy as np
        assert 8 in lines  # from numpy import int64
        assert 12 in lines  # np.asarray(...)

    def test_rule_only_applies_to_xp_routed_paths(self, linter):
        assert linter._is_xp_routed(Path("src/repro/core/engine.py"))
        assert linter._is_xp_routed(Path("src/repro/core/vector_kernel.py"))
        assert linter._is_xp_routed(Path("src/repro/core/restructure.py"))
        assert linter._is_xp_routed(Path("src/repro/core/memory.py"))
        assert not linter._is_xp_routed(Path("src/repro/core/xp.py"))
        assert not linter._is_xp_routed(Path("src/repro/core/kernel.py"))

    def test_hnp_alias_is_sanctioned(self, linter, tmp_path):
        clean = tmp_path / "core" / "engine.py"
        clean.parent.mkdir()
        clean.write_text(
            "from .xp import HOST\n"
            "hnp = HOST\n"
            "def f(x):\n"
            "    return hnp.asarray(x, dtype=hnp.int64)\n"
        )
        assert linter.lint_file(clean) == []


class TestLockOrderRule:
    def test_inverted_nesting_reported(self, linter):
        violations = linter.lint_file(FIXTURES / "lock_violation.py")
        lk = [v for v in violations if v.rule == "LK001"]
        assert len(lk) == 2
        assert "'_stats_lock' (rank 20)" in lk[0].message
        assert "'_LOCK' (rank 30)" in lk[0].message
        assert "'_session_lock' (rank 10)" in lk[1].message

    def test_sanctioned_order_and_nested_defs_clean(self, linter):
        violations = linter.lint_file(FIXTURES / "lock_violation.py")
        # Only the two seeded inversions fire: the rank-ascending method
        # and the nested-function body are clean.
        assert len(violations) == 2

    def test_serving_leaf_locks_admit_no_nesting(self, linter, tmp_path):
        """The ISSUE-8 leaf locks (quota/conn/shm-registry) share the max
        rank, so acquiring anything — even each other — inside them fires."""
        bad = tmp_path / "leaf.py"
        bad.write_text(
            "class S:\n"
            "    def f(self):\n"
            "        with self._quota_lock:\n"
            "            with self._stats_lock:\n"
            "                pass\n"
            "    def g(self):\n"
            "        with self._conn_lock:\n"
            "            with self._registry_lock:\n"
            "                pass\n"
        )
        violations = linter.lint_file(bad)
        assert [v.rule for v in violations] == ["LK001", "LK001"]
        assert "'_quota_lock' (rank 30)" in violations[0].message
        assert "'_stats_lock' (rank 20)" in violations[0].message
        assert "'_conn_lock' (rank 30)" in violations[1].message
        assert "'_registry_lock' (rank 30)" in violations[1].message

    def test_multi_item_with_checked(self, linter, tmp_path):
        bad = tmp_path / "multi.py"
        bad.write_text(
            "import threading\n"
            "_LOCK = threading.Lock()\n"
            "class S:\n"
            "    def f(self):\n"
            "        with _LOCK, self._run_lock:\n"
            "            pass\n"
        )
        violations = linter.lint_file(bad)
        assert [v.rule for v in violations] == ["LK001"]
        assert "'_run_lock' (rank 0)" in violations[0].message


class TestFrozenMutationRule:
    def test_seeded_mutations_reported(self, linter):
        violations = linter.lint_file(FIXTURES / "mut_violation.py")
        mut = [v for v in violations if v.rule == "MUT001"]
        assert len(mut) == 3
        messages = "\n".join(v.message for v in mut)
        assert "'tt_flat'" in messages
        assert "'weights'" in messages
        assert "'levels'" in messages

    def test_register_file_fields_covered(self, linter, tmp_path):
        seeded = tmp_path / "core" / "clocked_bad.py"
        seeded.parent.mkdir()
        seeded.write_text(
            "def corrupt(rf, state):\n"
            "    rf.init_values = state\n"
            "    rf.clk_to_q_rise[0] = 99\n"
            "    object.__setattr__(rf, 'reset_values', state)\n"
        )
        violations = linter.lint_file(seeded)
        messages = "\n".join(v.message for v in violations)
        assert "'init_values'" in messages
        assert "'clk_to_q_rise'" in messages
        assert "'reset_values'" in messages
        rules = sorted({v.rule for v in violations})
        assert rules == ["MUT001", "MUT002"]

    def test_exempt_names_do_not_fire(self, linter):
        violations = linter.lint_file(FIXTURES / "mut_violation.py")
        messages = "\n".join(v.message for v in violations)
        # Levelization.levels-style plain assignment and the GPU models'
        # self.device stay allowed; truthtable/waveform __setattr__ fields
        # ('table', 'data') are outside the packed set.
        assert "'device'" not in messages
        assert "'table'" not in messages
        assert "'data'" not in messages


class TestSliceMutationRule:
    def test_seeded_subscript_writes_reported(self, linter):
        violations = linter.lint_file(FIXTURES / "mut002_violation.py")
        mut = [v for v in violations if v.rule == "MUT002"]
        assert len(mut) == 3
        messages = "\n".join(v.message for v in mut)
        assert "'tt_flat'" in messages
        assert "'tt_offsets'" in messages
        assert "'wire_rise'" in messages
        # Local arrays and exempt generic names stay clean.
        assert "'levels'" not in messages

    def test_net_index_write_is_mut002_not_mut001(self, linter):
        violations = linter.lint_file(FIXTURES / "mut_violation.py")
        by_rule = {v.rule for v in violations if "'net_index'" in v.message}
        assert by_rule == {"MUT002"}

    def test_sanctioned_rebuild_paths(self, linter):
        assert linter._is_slice_sanctioned(Path("src/repro/core/vector_kernel.py"))
        assert linter._is_slice_sanctioned(Path("src/repro/core/incremental.py"))
        assert not linter._is_slice_sanctioned(Path("src/repro/core/engine.py"))
        assert not linter._is_slice_sanctioned(Path("src/repro/api/sharded.py"))

    def test_sanctioned_path_not_linted(self, linter, tmp_path):
        sanctioned = tmp_path / "core" / "incremental.py"
        sanctioned.parent.mkdir()
        sanctioned.write_text(
            "def patch(level):\n"
            "    level.tt_offsets[0] = 1\n"
        )
        assert linter.lint_file(sanctioned) == []

    def test_incremental_module_is_xp_routed(self, linter):
        assert linter._is_xp_routed(Path("src/repro/core/incremental.py"))


class TestWholeTree:
    def test_source_tree_is_clean(self, linter):
        violations = linter.lint_paths([REPO_ROOT / "src" / "repro"])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_cli_exit_codes(self, linter, capsys):
        assert linter.main([str(REPO_ROOT / "src" / "repro"), "--quiet"]) == 0
        assert linter.main([str(FIXTURES)]) == 1
        assert linter.main([str(REPO_ROOT / "no-such-dir")]) == 2
        capsys.readouterr()
