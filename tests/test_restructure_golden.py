"""Golden-file regression tests for restructure slicing and stitching.

``tests/data/restructure_golden.json`` freezes the exact Fig. 3 arrays —
including the ``EOW`` sentinel and initial-value-1 markers — that the
restructure step must produce when slicing canonical waveforms into
cycle-parallel windows, that stitching must produce when reassembling
per-window outputs (including ``window_overlap`` seams and propagation
tails), and that the engine must produce end to end on a small hand-built
design.  Both the per-object reference pipeline and the vectorized
pipeline are held to the same golden bytes, so a regression in either —
or a silent divergence between them — fails loudly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import NetlistBuilder
from repro.core import SimConfig, Waveform, WaveformPool
from repro.core.engine import GatspiEngine, _WindowRange
from repro.core.restructure import (
    lower_stimulus,
    slice_windows,
    stitch_windows,
)
from repro.core.xp import available_array_backends, get_array_backend
from repro.sdf import UnitDelayModel, annotation_from_design_delays

GOLDEN_PATH = Path(__file__).parent / "data" / "restructure_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: Array backends the device-threaded paths are held to the same golden
#: bytes on (numpy always; torch/cupy auto-included when importable).
DEVICES = available_array_backends()


def _case_ids(cases):
    return [case["name"] for case in cases]


# ----------------------------------------------------------------------
# Window slicing
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "case", GOLDEN["slice_cases"], ids=_case_ids(GOLDEN["slice_cases"])
)
def test_reference_window_slicing_matches_golden(case):
    """``Waveform.window`` (the reference slicer) reproduces the fixtures."""
    wave = Waveform.from_array(case["source"])
    for (start, end), expected in zip(case["windows"], case["expected"]):
        assert wave.window(start, end, rebase=True).to_list() == expected, (
            f"{case['name']}: window [{start}, {end})"
        )


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize(
    "case", GOLDEN["slice_cases"], ids=_case_ids(GOLDEN["slice_cases"])
)
def test_vectorized_slice_and_load_matches_golden(case, device):
    """The lowered-event slicer + bulk pool load store the same bytes.

    The slices go through ``lower_stimulus`` → ``slice_windows`` →
    ``WaveformPool.load_windows`` and are read back from the pool, so the
    fixture pins the full vectorized restructure/load path — including the
    stored ``EOW`` terminators and markers — on every array backend.
    """
    xp = get_array_backend(device)
    wave = Waveform.from_array(case["source"])
    events = lower_stimulus(("s",), {"s": wave}).to_device(xp)
    starts = xp.asarray([w[0] for w in case["windows"]], dtype=xp.int64)
    ends = xp.asarray([w[1] for w in case["windows"]], dtype=xp.int64)
    slices = slice_windows(events, starts, ends, xp=xp)
    pool = WaveformPool(1 << 16, xp=xp)
    window_indices = list(range(len(case["windows"])))
    pool.load_windows(
        ("s",),
        window_indices,
        slices.initial_values,
        events.times,
        slices.starts,
        slices.counts,
        starts,
    )
    for index, expected in enumerate(case["expected"]):
        assert pool.read_waveform("s", index).to_list() == expected, (
            f"{case['name']}: window {index}"
        )


# ----------------------------------------------------------------------
# Stitching
# ----------------------------------------------------------------------
def _stitch_arrays(case):
    window_starts = np.asarray(case["window_starts"], dtype=np.int64)
    establish = np.asarray(
        [w["establish"] for w in case["windows"]], dtype=np.int64
    )
    counts = np.asarray(
        [len(w["toggles_local"]) for w in case["windows"]], dtype=np.int64
    )
    times = np.asarray(
        [
            t + start
            for w, start in zip(case["windows"], case["window_starts"])
            for t in w["toggles_local"]
        ],
        dtype=np.int64,
    )
    return window_starts, establish, counts, times


@pytest.mark.parametrize(
    "case", GOLDEN["stitch_cases"], ids=_case_ids(GOLDEN["stitch_cases"])
)
def test_vectorized_stitching_matches_golden(case):
    window_starts, establish, counts, times = _stitch_arrays(case)
    stitched = stitch_windows(window_starts, establish, counts, times)
    assert stitched.to_list() == case["expected"], case["name"]


@pytest.mark.parametrize(
    "case", GOLDEN["stitch_cases"], ids=_case_ids(GOLDEN["stitch_cases"])
)
def test_reference_stitching_matches_golden(case):
    """The engine's sequential ``_stitch`` agrees with the same fixtures."""
    builder = NetlistBuilder("stitch_ref")
    a = builder.input("a")
    builder.gate("INV", [a])
    engine = GatspiEngine(builder.build())
    windows = [
        _WindowRange(index=i, start=start, end=start)
        for i, start in enumerate(case["window_starts"])
    ]
    per_window = {
        i: Waveform.from_toggle_array(w["establish"], w["toggles_local"])
        for i, w in enumerate(case["windows"])
    }
    stitched = engine._stitch("n", per_window, windows)
    assert stitched.to_list() == case["expected"], case["name"]


# ----------------------------------------------------------------------
# End to end through the engine
# ----------------------------------------------------------------------
def _golden_netlist():
    builder = NetlistBuilder("golden_small")
    a = builder.input("a")
    b = builder.input("b")
    n1 = builder.gate("NAND2", [a, b], name="u_nand")
    n2 = builder.gate("INV", [n1], name="u_inv")
    builder.output("y")
    builder.gate("XOR2", [n1, n2], output_net="y", name="u_xor")
    return builder.build()


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize(
    "case", GOLDEN["engine_cases"], ids=_case_ids(GOLDEN["engine_cases"])
)
@pytest.mark.parametrize("restructure", ["python", "vector"])
def test_engine_waveforms_match_golden(case, restructure, device):
    """Full simulations reproduce the frozen waveforms in both pipelines.

    Covers the settle-margin trim (``default_overlap``), propagation
    tails with the margin disabled (``zero_overlap_keeps_tails``), and a
    deliberately undersized margin (``tiny_overlap``) whose seam
    artifacts the stitch rules must resolve exactly as frozen.  The
    vector pipeline runs on every available array backend (the python
    reference pipeline pins numpy by construction).
    """
    netlist = _golden_netlist()
    annotation = annotation_from_design_delays(
        netlist, UnitDelayModel(delay=10).build(netlist)
    )
    stimulus = {
        net: Waveform.from_array(arr) for net, arr in case["stimulus"].items()
    }
    config = SimConfig(restructure=restructure, device=device, **case["config"])
    engine = GatspiEngine(netlist, annotation=annotation, config=config)
    result = engine.simulate(stimulus, duration=case["duration"])
    assert dict(sorted(result.toggle_counts.items())) == (
        case["expected_toggle_counts"]
    ), case["name"]
    assert sorted(result.waveforms) == sorted(case["expected_waveforms"])
    for net, expected in case["expected_waveforms"].items():
        assert result.waveforms[net].to_list() == expected, (
            f"{case['name']}: net {net!r} ({restructure})"
        )


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_backend_matches_engine_golden(shards):
    """``gatspi-sharded`` reproduces the frozen end-to-end waveforms.

    Covers the ``default_overlap`` fixture only: its settle margin is
    derived from the critical path, which is the invariant that makes
    the merged result partition-independent.  The other engine fixtures
    deliberately use insufficient margins (``window_overlap`` 0 / 5), so
    their frozen bytes encode *single-partition* seam artifacts and are
    not shard-invariant by construction.
    """
    from repro.api import resolve_backend

    case = next(
        c for c in GOLDEN["engine_cases"] if c["name"] == "default_overlap"
    )
    netlist = _golden_netlist()
    annotation = annotation_from_design_delays(
        netlist, UnitDelayModel(delay=10).build(netlist)
    )
    stimulus = {
        net: Waveform.from_array(arr) for net, arr in case["stimulus"].items()
    }
    backend, options = resolve_backend(
        f"gatspi-sharded:shards={shards},workers={shards}"
    )
    session = backend.prepare(
        netlist, annotation=annotation, config=SimConfig(**case["config"]),
        **options,
    )
    result = session.run(stimulus, duration=case["duration"])
    assert dict(sorted(result.toggle_counts.items())) == (
        case["expected_toggle_counts"]
    )
    for net, expected in case["expected_waveforms"].items():
        assert result.waveforms[net].to_list() == expected, (
            f"shards={shards}: net {net!r}"
        )
