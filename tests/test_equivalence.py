"""GATSPI-engine vs event-driven-reference equivalence (the paper's accuracy check).

The paper verifies correctness by comparing SAIF files and spot-checking full
waveforms against a commercial simulator.  Here the independently implemented
event-driven simulator plays the commercial role, and the check is exhaustive:
identical per-net toggle counts *and* identical full waveforms, across random
netlists, random stimuli, every cycle-parallelism setting, and the feature
ablation variants.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GatspiEngine, SimConfig, Waveform
from repro.reference import EventDrivenSimulator, ZeroDelaySimulator
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays

from repro.testing import build_random_netlist, build_random_stimulus

DURATION = 6000
CONFIG = SimConfig(clock_period=500)


def run_both(netlist, annotation, stimulus, config=CONFIG):
    engine = GatspiEngine(netlist, annotation=annotation, config=config)
    gatspi = engine.simulate(stimulus, duration=DURATION)
    reference = EventDrivenSimulator(
        netlist, annotation=annotation, config=config
    ).simulate(stimulus, duration=DURATION)
    return gatspi, reference


def assert_equivalent(gatspi, reference):
    mismatches = gatspi.differing_nets(reference)
    assert not mismatches, f"toggle count mismatches: {list(mismatches.items())[:5]}"
    for net, wave in gatspi.waveforms.items():
        assert wave == reference.waveforms[net], f"waveform mismatch on {net}"


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_netlists_match_reference(seed):
    netlist = build_random_netlist(num_gates=45, seed=seed)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=seed).build(netlist)
    )
    stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 100)
    gatspi, reference = run_both(netlist, annotation, stimulus)
    assert_equivalent(gatspi, reference)


@pytest.mark.parametrize("parallelism", [1, 3, 8, 32])
def test_cycle_parallelism_does_not_change_results(parallelism):
    netlist = build_random_netlist(num_gates=40, seed=5)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=5).build(netlist)
    )
    stimulus = build_random_stimulus(netlist, DURATION, seed=55)
    config = CONFIG.with_updates(cycle_parallelism=parallelism)
    gatspi, reference = run_both(netlist, annotation, stimulus, config=config)
    assert_equivalent(gatspi, reference)


@pytest.mark.parametrize(
    "updates",
    [
        {"enable_net_delay_filtering": False},
        {"full_sdf": False},
        {"enable_net_delay_filtering": False, "full_sdf": False},
        {"pathpulse_percent": 50.0},
    ],
)
def test_feature_ablations_match_reference(updates):
    """The Table 7 ablation variants stay bit-exact vs the same-config reference."""
    netlist = build_random_netlist(num_gates=35, seed=9)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=9).build(netlist)
    )
    stimulus = build_random_stimulus(netlist, DURATION, seed=99)
    config = CONFIG.with_updates(cycle_parallelism=1, **updates)
    gatspi, reference = run_both(netlist, annotation, stimulus, config=config)
    assert_equivalent(gatspi, reference)


def test_zero_wire_delays_match_reference():
    netlist = build_random_netlist(num_gates=30, seed=12)
    model = SyntheticDelayModel(seed=12, wire_delay_range=(0, 0))
    annotation = annotation_from_design_delays(netlist, model.build(netlist))
    stimulus = build_random_stimulus(netlist, DURATION, seed=121)
    gatspi, reference = run_both(netlist, annotation, stimulus)
    assert_equivalent(gatspi, reference)


def test_delay_aware_toggles_at_least_functional():
    """Delay-aware simulation can only add (glitch) toggles, never lose real ones.

    This holds when stimulus event times are shared by all sources and spaced
    wider than the critical path, so every functional transition settles
    before the next event arrives.
    """
    import random as _random

    netlist = build_random_netlist(num_gates=40, seed=21)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=21).build(netlist)
    )
    rng = _random.Random(211)
    event_times = list(range(700, DURATION, 700))
    stimulus = {}
    for net in netlist.source_nets():
        toggles = [t for t in event_times if rng.random() < 0.6]
        stimulus[net] = Waveform.from_initial_and_toggles(rng.randint(0, 1), toggles)
    gatspi = GatspiEngine(netlist, annotation=annotation, config=CONFIG).simulate(
        stimulus, duration=DURATION
    )
    functional = ZeroDelaySimulator(netlist).simulate(stimulus, duration=DURATION)
    sources = set(netlist.source_nets())
    # With stimulus gaps much larger than the critical path, every functional
    # transition propagates; glitches can only add toggles on top.
    for net, count in functional.toggle_counts.items():
        if net in sources:
            continue
        assert gatspi.toggle_counts[net] >= count


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_equivalence_property(seed):
    """Property-based version of the accuracy check on small random circuits."""
    netlist = build_random_netlist(num_inputs=5, num_gates=25, seed=seed)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=seed).build(netlist)
    )
    stimulus = build_random_stimulus(netlist, 3000, seed=seed ^ 0xABCD,
                                     min_gap=20, max_gap=300)
    config = SimConfig(clock_period=500, cycle_parallelism=1 + seed % 5)
    engine = GatspiEngine(netlist, annotation=annotation, config=config)
    gatspi = engine.simulate(stimulus, duration=3000)
    reference = EventDrivenSimulator(
        netlist, annotation=annotation, config=config
    ).simulate(stimulus, duration=3000)
    assert gatspi.toggle_counts == reference.toggle_counts
