"""Tests for the Fig. 3 array waveform format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.waveform import (
    EOW,
    INITIAL_ONE_MARKER,
    Waveform,
    WaveformError,
    concatenate_windows,
)


class TestConstruction:
    def test_constant_zero(self):
        wave = Waveform.constant(0)
        assert wave.initial_value == 0
        assert wave.toggle_count() == 0
        assert wave.to_list() == [0, EOW]

    def test_constant_one_uses_marker(self):
        wave = Waveform.constant(1)
        assert wave.initial_value == 1
        assert wave.has_initial_one_marker
        assert wave.to_list() == [INITIAL_ONE_MARKER, 0, EOW]

    def test_paper_example_initial_one(self):
        wave = Waveform.from_array([-1, 0, 34, 59, 123, EOW])
        assert wave.initial_value == 1
        assert wave.toggle_count() == 3
        assert wave.value_at(40) == 0
        assert wave.value_at(60) == 1

    def test_paper_example_initial_zero(self):
        wave = Waveform.from_array([0, 4, 78, 367, EOW])
        assert wave.initial_value == 0
        assert wave.value_at(5) == 1
        assert wave.value_at(100) == 0
        assert wave.final_value == 1

    def test_from_changes_collapses_duplicates(self):
        wave = Waveform.from_changes([(0, 0), (10, 1), (20, 1), (30, 0)])
        assert wave.toggle_count() == 2

    def test_from_changes_rejects_non_monotonic(self):
        with pytest.raises(WaveformError):
            Waveform.from_changes([(0, 0), (10, 1), (5, 0)])

    def test_from_initial_and_toggles(self):
        wave = Waveform.from_initial_and_toggles(1, [5, 9, 20])
        assert wave.initial_value == 1
        assert wave.value_at(6) == 0
        assert wave.value_at(25) == 0
        assert wave.toggle_count() == 3

    def test_requires_eow(self):
        with pytest.raises(WaveformError):
            Waveform.from_array([0, 10])

    def test_rejects_decreasing_timestamps(self):
        with pytest.raises(WaveformError):
            Waveform.from_array([0, 20, 10, EOW])

    def test_rejects_bad_value(self):
        with pytest.raises(WaveformError):
            Waveform.constant(2)


class TestQueries:
    def test_value_before_start(self):
        wave = Waveform.from_initial_and_toggles(1, [100], start_time=50)
        assert wave.value_at(0) == 1

    def test_toggles_in_window(self):
        wave = Waveform.from_initial_and_toggles(0, [10, 20, 30, 40])
        assert wave.toggles_in(0, 100) == 4
        assert wave.toggles_in(10, 30) == 2
        assert wave.toggles_in(40, 100) == 0

    def test_duration_at_value(self):
        wave = Waveform.from_initial_and_toggles(0, [10, 30])
        # 0 for [0,10), 1 for [10,30), 0 for [30,100]
        assert wave.duration_at(1, 0, 100) == 20
        assert wave.duration_at(0, 0, 100) == 80

    def test_equality_and_hash(self):
        first = Waveform.from_initial_and_toggles(0, [5, 9])
        second = Waveform.from_initial_and_toggles(0, [5, 9])
        assert first == second
        assert hash(first) == hash(second)
        assert first != Waveform.from_initial_and_toggles(0, [5, 10])


class TestTransformations:
    def test_shift(self):
        wave = Waveform.from_initial_and_toggles(0, [10, 20]).shifted(5)
        assert [t for t, _ in wave.changes()] == [5, 15, 25]

    def test_inverted(self):
        wave = Waveform.from_initial_and_toggles(0, [10])
        inv = wave.inverted()
        assert inv.initial_value == 1
        assert inv.value_at(15) == 0

    def test_window_and_rebase(self):
        wave = Waveform.from_initial_and_toggles(0, [10, 30, 50, 70])
        window = wave.window(25, 60)
        assert window.initial_value == 1  # value at t=25
        assert window.toggle_count() == 2  # toggles at 30, 50
        assert [t for t, _ in window.changes()] == [0, 5, 25]

    def test_window_rejects_empty_range(self):
        wave = Waveform.constant(0)
        with pytest.raises(WaveformError):
            wave.window(10, 10)

    def test_concatenate_windows_inverse_of_window(self):
        wave = Waveform.from_initial_and_toggles(0, [10, 30, 55, 70, 95])
        length = 40
        windows = [wave.window(i * length, (i + 1) * length) for i in range(3)]
        stitched = concatenate_windows(windows, length)
        for time in range(0, 115, 5):
            assert stitched.value_at(time) == wave.value_at(time)


@given(
    initial=st.integers(min_value=0, max_value=1),
    gaps=st.lists(st.integers(min_value=1, max_value=50), min_size=0, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_changes_property(initial, gaps):
    """from_changes(to_change_list()) is the identity."""
    times = []
    current = 0
    for gap in gaps:
        current += gap
        times.append(current)
    wave = Waveform.from_initial_and_toggles(initial, times)
    rebuilt = Waveform.from_changes(wave.to_change_list())
    assert rebuilt == wave
    assert wave.toggle_count() == len(times)


@given(
    gaps=st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=25),
    split=st.integers(min_value=1, max_value=500),
)
@settings(max_examples=60, deadline=None)
def test_window_preserves_values_property(gaps, split):
    """Slicing then querying matches querying the original waveform."""
    times = np.cumsum(gaps).tolist()
    wave = Waveform.from_initial_and_toggles(0, times)
    end = times[-1] + 10
    split = min(split, end - 1)
    window = wave.window(split, end, rebase=False)
    for probe in range(split, end, 7):
        assert window.value_at(probe) == wave.value_at(probe)
