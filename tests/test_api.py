"""Tests for the unified backend registry and session layer (`repro.api`)."""

import pytest

from repro.api import (
    BackendCapabilities,
    DuplicateBackendError,
    Session,
    SimBackend,
    UnknownBackendError,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.core import SimConfig, SimulationResult, StimulusError
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.testing import build_random_netlist, build_random_stimulus

DURATION = 4000
CONFIG = SimConfig(clock_period=500, cycle_parallelism=4)
BUILTIN_BACKENDS = (
    "event", "gatspi", "gatspi-sharded", "threaded-cpu", "zero-delay"
)


@pytest.fixture(scope="module")
def design():
    netlist = build_random_netlist(num_gates=30, seed=17)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=17).build(netlist)
    )
    stimulus = build_random_stimulus(netlist, DURATION, seed=170)
    return netlist, annotation, stimulus


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        for name in BUILTIN_BACKENDS:
            assert name in names
        assert names == tuple(sorted(names))

    def test_unknown_backend_error_lists_available(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("no-such-backend")
        message = str(excinfo.value)
        assert "no-such-backend" in message
        for name in BUILTIN_BACKENDS:
            assert name in message

    def test_duplicate_name_rejected(self):
        with pytest.raises(DuplicateBackendError):
            register_backend("gatspi", get_backend("event"))

    def test_decorator_registration_and_unregister(self):
        @register_backend("temp-backend")
        class TempBackend(SimBackend):
            name = "temp-backend"
            capabilities = BackendCapabilities(description="test stub")

            def _prepare(self, netlist, annotation=None, config=None, **options):
                raise NotImplementedError

        try:
            assert isinstance(get_backend("temp-backend"), TempBackend)
            assert "temp-backend" in available_backends()
        finally:
            unregister_backend("temp-backend")
        assert "temp-backend" not in available_backends()
        with pytest.raises(UnknownBackendError):
            unregister_backend("temp-backend")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            register_backend("", get_backend("event"))


class TestSessionContract:
    @pytest.mark.parametrize("backend_name", BUILTIN_BACKENDS)
    def test_prepare_run_returns_uniform_result(self, backend_name, design):
        netlist, annotation, stimulus = design
        backend = get_backend(backend_name)
        session = backend.prepare(netlist, annotation=annotation, config=CONFIG)
        result = session.run(stimulus, cycles=8)
        assert isinstance(result, SimulationResult)
        assert result.duration == 8 * CONFIG.clock_period
        # Stats are uniformly populated, whichever engine ran.
        assert result.stats.cycles == 8
        assert result.stats.gate_count == netlist.gate_count
        assert result.stats.input_events > 0
        assert result.total_toggles() > 0
        assert session.backend_name == backend_name
        assert session.runs_completed == 1

    @pytest.mark.parametrize("backend_name", BUILTIN_BACKENDS)
    def test_missing_stimulus_rejected(self, backend_name, design):
        netlist, annotation, _ = design
        session = get_backend(backend_name).prepare(
            netlist, annotation=annotation, config=CONFIG
        )
        with pytest.raises(StimulusError):
            session.run({}, cycles=2)

    @pytest.mark.parametrize("backend_name", BUILTIN_BACKENDS)
    def test_cycles_or_duration_required(self, backend_name, design):
        netlist, annotation, stimulus = design
        session = get_backend(backend_name).prepare(
            netlist, annotation=annotation, config=CONFIG
        )
        with pytest.raises(ValueError):
            session.run(stimulus)

    def test_compile_once_simulate_many(self, design):
        netlist, annotation, stimulus = design
        session = get_backend("gatspi").prepare(
            netlist, annotation=annotation, config=CONFIG
        )
        first = session.run(stimulus, cycles=8)
        second = session.run(stimulus, cycles=8)
        assert first.toggle_counts == second.toggle_counts
        assert session.runs_completed == 2
        # A different stimulus reuses the same compiled design.
        other = build_random_stimulus(netlist, DURATION, seed=999)
        third = session.run(other, duration=DURATION)
        assert third.stats.cycles == DURATION // CONFIG.clock_period

    def test_unknown_prepare_option_rejected(self, design):
        netlist, annotation, _ = design
        with pytest.raises(TypeError):
            get_backend("gatspi").prepare(
                netlist, annotation=annotation, config=CONFIG, num_wokers=4
            )

    def test_capabilities_describe_backends(self):
        assert get_backend("gatspi").capabilities.delay_aware
        assert get_backend("event").capabilities.glitch_accurate
        assert not get_backend("zero-delay").capabilities.delay_aware

    def test_sharded_backend_adapts_to_available_parallelism(self, design):
        """``shards`` is a cap: the default width follows ``os.cpu_count``.

        Pinning ``workers`` forces the requested partition count, which
        is how the differential suite exercises real sharding anywhere.
        """
        import os

        netlist, annotation, _ = design
        backend = get_backend("gatspi-sharded")
        adaptive = backend.prepare(netlist, annotation=annotation, config=CONFIG)
        assert adaptive.requested_shards == 4
        assert adaptive.shard_count == min(4, os.cpu_count() or 1)
        assert adaptive.worker_count == adaptive.shard_count
        pinned = backend.prepare(
            netlist, annotation=annotation, config=CONFIG, shards=4, workers=2
        )
        assert pinned.shard_count == 4
        assert pinned.worker_count == 2

    def test_threaded_cpu_session_keeps_report(self, design):
        netlist, annotation, stimulus = design
        session = get_backend("threaded-cpu").prepare(
            netlist, annotation=annotation, config=CONFIG, num_workers=4
        )
        assert session.last_report is None
        session.run(stimulus, cycles=4)
        assert session.last_report is not None
        assert session.last_report.num_workers == 4


@pytest.mark.concurrency
class TestSessionConcurrency:
    """Regressions for the unsynchronized ``Session.run`` critical section.

    Before the per-session lock, concurrent ``run()`` calls raced on the
    ``_runs_completed`` counter *and* on backend-internal per-run state —
    the event-driven engine mutates its gate states in place during a
    run, so two interleaved runs corrupt each other's waveforms outright.
    """

    @pytest.fixture(autouse=True)
    def tight_switch_interval(self):
        import sys

        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        yield
        sys.setswitchinterval(old)

    @pytest.mark.parametrize("backend_name", ["event", "gatspi"])
    def test_concurrent_runs_stay_consistent(self, backend_name, design):
        from concurrent.futures import ThreadPoolExecutor

        netlist, annotation, stimulus = design
        backend = get_backend(backend_name)
        reference = backend.prepare(
            netlist, annotation=annotation, config=CONFIG
        ).run(stimulus, duration=DURATION)

        session = backend.prepare(netlist, annotation=annotation, config=CONFIG)
        attempts = 12
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(
                pool.map(
                    lambda _: session.run(stimulus, duration=DURATION),
                    range(attempts),
                )
            )
        # No lost counter increments.
        assert session.runs_completed == attempts
        # Every concurrent run produced the serial result, with uniformly
        # finalized stats.
        for result in results:
            assert result.toggle_counts == reference.toggle_counts
            assert result.stats.cycles == reference.stats.cycles
            assert result.stats.gate_count == netlist.gate_count
            assert result.stats.input_events == reference.stats.input_events

    def test_concurrent_runs_with_distinct_stimuli(self, design):
        """Interleaved runs with different stimuli keep their own answers."""
        from concurrent.futures import ThreadPoolExecutor

        netlist, annotation, _ = design
        backend = get_backend("gatspi")
        stimuli = [
            build_random_stimulus(netlist, DURATION, seed=1000 + i)
            for i in range(6)
        ]
        expected = [
            backend.prepare(netlist, annotation=annotation, config=CONFIG).run(
                stim, duration=DURATION
            ).toggle_counts
            for stim in stimuli
        ]
        session = backend.prepare(netlist, annotation=annotation, config=CONFIG)
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(
                pool.map(
                    lambda stim: session.run(stim, duration=DURATION), stimuli
                )
            )
        for result, counts in zip(results, expected):
            assert result.toggle_counts == counts
        assert session.runs_completed == len(stimuli)


class TestCrossBackendEquivalence:
    """The ISSUE acceptance check: gatspi and event agree through the api."""

    @pytest.mark.parametrize("seed", [2, 11])
    def test_gatspi_and_event_toggle_counts_agree(self, seed):
        netlist = build_random_netlist(num_gates=35, seed=seed)
        annotation = annotation_from_design_delays(
            netlist, SyntheticDelayModel(seed=seed).build(netlist)
        )
        stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 50)
        results = {}
        for name in ("gatspi", "event"):
            session = get_backend(name).prepare(
                netlist, annotation=annotation, config=CONFIG
            )
            results[name] = session.run(stimulus, duration=DURATION)
        mismatches = results["gatspi"].differing_nets(results["event"])
        assert not mismatches, f"toggle mismatches: {list(mismatches.items())[:5]}"
