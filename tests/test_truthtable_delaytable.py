"""Tests for the Fig. 4 truth-table and conditional delay-table lookups."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import DEFAULT_LIBRARY
from repro.core.delaytable import (
    FALL,
    RISE,
    DelayArc,
    GateDelayTable,
    InterconnectDelay,
    NO_DELAY,
)
from repro.core.truthtable import (
    TruthTable,
    index_for_values,
    pin_weights,
    values_for_index,
)


class TestPinWeights:
    def test_two_pin_weights_match_paper(self):
        # Paper Fig. 4: pin A has weight 2^1, pin B has weight 2^0.
        assert pin_weights(2) == (2, 1)

    def test_index_round_trip(self):
        for num_pins in range(1, 6):
            for index in range(2**num_pins):
                values = values_for_index(index, num_pins)
                assert index_for_values(values) == index

    def test_index_rejects_bad_values(self):
        with pytest.raises(ValueError):
            index_for_values((0, 2))


class TestTruthTable:
    def test_and2_table_matches_paper_figure(self):
        # Fig. 4 lists the AND-like table Y=[1,1,1,0] for a NAND; check both.
        nand = DEFAULT_LIBRARY.truth_table("NAND2")
        assert list(nand.table) == [1, 1, 1, 0]
        and2 = DEFAULT_LIBRARY.truth_table("AND2")
        assert list(and2.table) == [0, 0, 0, 1]

    def test_every_library_cell_matches_its_function(self):
        for cell in DEFAULT_LIBRARY.combinational_cells():
            table = DEFAULT_LIBRARY.truth_table(cell.name)
            assert table.is_equivalent_to(cell.function)

    def test_evaluate_checks_arity(self):
        table = DEFAULT_LIBRARY.truth_table("AOI21")
        with pytest.raises(ValueError):
            table.evaluate((1, 0))

    def test_from_entries_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TruthTable.from_entries([0, 1, 1])

    def test_zero_input_cell(self):
        table = DEFAULT_LIBRARY.truth_table("TIEHI")
        assert table.num_pins == 0
        assert table.lookup(0) == 1


class TestGateDelayTable:
    def test_uniform_table(self):
        table = GateDelayTable.uniform(("A", "B"), rise=7, fall=9)
        for pin in ("A", "B"):
            for edge in (RISE, FALL):
                for column in range(4):
                    assert table.lookup(pin, edge, RISE, column) == 7
                    assert table.lookup(pin, edge, FALL, column) == 9

    def test_conditional_arc_overrides_matching_columns_only(self):
        # Reproduce the paper's AOI21 example: pin B switching, COND on A1/A2.
        cell = DEFAULT_LIBRARY.get("AOI21")
        table = GateDelayTable(cell.inputs)
        table.add_arc(DelayArc(pin="B", rise=8, fall=6))
        table.add_arc(
            DelayArc(pin="B", rise=None, fall=5, input_edge=RISE,
                     condition={"A2": 1, "A1": 0})
        )
        # Column where A1=0, A2=1, B=anything: weights A1=4, A2=2, B=1.
        matching = 2
        not_matching = 4 + 2
        assert table.lookup("B", RISE, FALL, matching) == 5
        assert table.lookup("B", RISE, FALL, not_matching) == 6
        assert table.lookup("B", FALL, FALL, matching) == 6  # negedge unaffected
        assert table.lookup("B", RISE, RISE, matching) == 8

    def test_unknown_pin_rejected(self):
        table = GateDelayTable(("A",))
        with pytest.raises(KeyError):
            table.add_arc(DelayArc(pin="Z", rise=1, fall=1))
        with pytest.raises(KeyError):
            table._columns_matching({"Q": 1})

    def test_min_delay_for_msi(self):
        table = GateDelayTable(("A", "B"))
        table.add_arc(DelayArc(pin="A", rise=10, fall=10))
        table.add_arc(DelayArc(pin="B", rise=4, fall=4))
        assert table.min_delay([0, 1], [RISE, RISE], RISE, 3) == 4

    def test_averaged_collapses_conditions(self):
        table = GateDelayTable(("A", "B"))
        table.add_arc(DelayArc(pin="A", rise=10, fall=10))
        table.add_arc(DelayArc(pin="A", rise=6, fall=6, condition={"B": 1}))
        averaged = table.averaged()
        values = {averaged.lookup("A", RISE, RISE, c) for c in range(4)}
        assert len(values) == 1
        assert 6 < values.pop() < 10

    def test_undefined_arc_is_no_delay(self):
        table = GateDelayTable(("A",))
        table.add_arc(DelayArc(pin="A", rise=5, fall=None, input_edge=RISE))
        assert table.lookup("A", RISE, RISE, 0) == 5
        assert table.lookup("A", FALL, RISE, 0) == NO_DELAY

    def test_max_finite_delay(self):
        table = GateDelayTable.uniform(("A", "B"), rise=3, fall=12)
        assert table.max_finite_delay() == 12

    def test_requires_at_least_one_pin(self):
        with pytest.raises(ValueError):
            GateDelayTable(())


class TestInterconnectDelay:
    def test_edge_selection(self):
        wire = InterconnectDelay(rise=3, fall=1)
        assert wire.for_edge(1) == 3
        assert wire.for_edge(0) == 1

    def test_zero(self):
        assert InterconnectDelay().is_zero()
        assert not InterconnectDelay(rise=1).is_zero()


@given(
    num_pins=st.integers(min_value=1, max_value=4),
    rise=st.integers(min_value=1, max_value=50),
    fall=st.integers(min_value=1, max_value=50),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_conditional_override_property(num_pins, rise, fall, data):
    """A conditional arc only changes columns that satisfy its condition."""
    pins = tuple(f"P{i}" for i in range(num_pins))
    table = GateDelayTable(pins)
    table.add_arc(DelayArc(pin=pins[0], rise=rise, fall=fall))
    condition_pins = pins[1:]
    condition = {
        pin: data.draw(st.integers(min_value=0, max_value=1)) for pin in condition_pins
    }
    table.add_arc(DelayArc(pin=pins[0], rise=rise + 5, fall=fall + 5,
                           condition=condition))
    weights = pin_weights(num_pins)
    for column in range(2**num_pins):
        values = values_for_index(column, num_pins)
        satisfied = all(
            values[pins.index(pin)] == wanted for pin, wanted in condition.items()
        )
        expected = rise + 5 if satisfied else rise
        assert table.lookup(pins[0], RISE, RISE, column) == expected
