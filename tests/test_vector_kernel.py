"""Scalar-vs-vector kernel equivalence and the SoA pipeline plumbing.

The level-batched vector kernel must be *bit-identical* to the per-gate
scalar reference kernel — same waveforms, same toggle counts — across gate
arities, MSI collisions, inertial filtering settings, initial-value-1
waveforms, and empty windows.  The pool-layout tests pin down the count-pass
prefix-sum allocation and the zero-copy readback views.
"""

import random

import numpy as np
import pytest

from repro.api import get_backend, parse_backend_spec, resolve_backend
from repro.cells import DEFAULT_LIBRARY
from repro.core import (
    EOW,
    GateKernelInputs,
    GatspiEngine,
    SimConfig,
    StimulusError,
    TimestampOverflowError,
    Waveform,
    WaveformPool,
    pack_design,
    simulate_gate_window,
    simulate_level,
    simulate_multi_gpu,
)
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.testing import build_random_netlist, build_random_stimulus

DURATION = 6000


def run_both_kernels(netlist, annotation, stimulus, duration=DURATION, **updates):
    results = []
    for kernel in ("scalar", "vector"):
        config = SimConfig(clock_period=500, kernel=kernel, **updates)
        engine = GatspiEngine(netlist, annotation=annotation, config=config)
        results.append(engine.simulate(stimulus, duration=duration))
    return results


def assert_bit_identical(scalar, vector):
    mismatches = scalar.differing_nets(vector)
    assert not mismatches, f"toggle count mismatches: {list(mismatches.items())[:5]}"
    for net, wave in scalar.waveforms.items():
        assert wave == vector.waveforms[net], f"waveform mismatch on {net}"


class TestScalarVectorEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_netlists(self, seed):
        """Random designs over the full cell mix (1- to 4-pin gates)."""
        netlist = build_random_netlist(num_gates=45, seed=seed)
        annotation = annotation_from_design_delays(
            netlist, SyntheticDelayModel(seed=seed).build(netlist)
        )
        stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 100)
        assert_bit_identical(*run_both_kernels(netlist, annotation, stimulus))

    @pytest.mark.parametrize("parallelism", [1, 3, 16])
    def test_cycle_parallelism(self, parallelism):
        netlist = build_random_netlist(num_gates=40, seed=7)
        annotation = annotation_from_design_delays(
            netlist, SyntheticDelayModel(seed=7).build(netlist)
        )
        stimulus = build_random_stimulus(netlist, DURATION, seed=77)
        assert_bit_identical(
            *run_both_kernels(
                netlist, annotation, stimulus, cycle_parallelism=parallelism
            )
        )

    def test_msi_collisions(self):
        """Zero wire delays + shared toggle instants force MSI resolution."""
        netlist = build_random_netlist(num_gates=40, seed=21)
        model = SyntheticDelayModel(seed=21, wire_delay_range=(0, 0))
        annotation = annotation_from_design_delays(netlist, model.build(netlist))
        rng = random.Random(211)
        instants = list(range(300, DURATION, 300))
        stimulus = {
            net: Waveform.from_initial_and_toggles(
                rng.randint(0, 1), [t for t in instants if rng.random() < 0.7]
            )
            for net in netlist.source_nets()
        }
        assert_bit_identical(*run_both_kernels(netlist, annotation, stimulus))

    @pytest.mark.parametrize(
        "updates",
        [
            {"pathpulse_percent": 50.0},
            {"pathpulse_percent": 0.0},
            {"enable_net_delay_filtering": False},
            {"two_pass": False},
            {"full_sdf": False},
        ],
    )
    def test_filtering_and_ablation_variants(self, updates):
        """Inertial filtering / PATHPULSEPERCENT variants stay bit-exact."""
        netlist = build_random_netlist(num_gates=35, seed=9)
        annotation = annotation_from_design_delays(
            netlist, SyntheticDelayModel(seed=9).build(netlist)
        )
        stimulus = build_random_stimulus(netlist, DURATION, seed=99, min_gap=15)
        assert_bit_identical(
            *run_both_kernels(netlist, annotation, stimulus, **updates)
        )

    def test_initial_value_one_everywhere(self):
        """All-ones initial values exercise the -1 marker path per pin."""
        netlist = build_random_netlist(num_gates=30, seed=12)
        annotation = annotation_from_design_delays(
            netlist, SyntheticDelayModel(seed=12).build(netlist)
        )
        stimulus = {
            net: Waveform.from_initial_and_toggles(1, [400 + 13 * k])
            for k, net in enumerate(netlist.source_nets())
        }
        assert_bit_identical(*run_both_kernels(netlist, annotation, stimulus))

    def test_empty_windows(self):
        """Sparse stimulus with many windows leaves most windows event-free."""
        netlist = build_random_netlist(num_gates=30, seed=13)
        annotation = annotation_from_design_delays(
            netlist, SyntheticDelayModel(seed=13).build(netlist)
        )
        stimulus = {
            net: Waveform.from_initial_and_toggles(k % 2, [600])
            for k, net in enumerate(netlist.source_nets())
        }
        assert_bit_identical(
            *run_both_kernels(
                netlist, annotation, stimulus, duration=8000, cycle_parallelism=16
            )
        )

    def test_zero_input_tie_cells(self):
        """TIEHI/TIELO gates have no pins: every lane is padding."""
        from repro.netlist import NetlistBuilder

        builder = NetlistBuilder("ties")
        a = builder.input("a")
        hi = builder.gate("TIEHI", [])
        lo = builder.gate("TIELO", [])
        n1 = builder.gate("NAND2", [a, hi])
        n2 = builder.gate("OR2", [n1, lo])
        builder.output("out")
        builder.gate("BUF", [n2], output_net="out")
        netlist = builder.build()
        annotation = annotation_from_design_delays(
            netlist, SyntheticDelayModel(seed=6).build(netlist)
        )
        stimulus = build_random_stimulus(netlist, DURATION, seed=66)
        scalar, vector = run_both_kernels(netlist, annotation, stimulus)
        assert_bit_identical(scalar, vector)
        assert vector.waveforms[hi].initial_value == 1
        assert vector.waveforms[lo].initial_value == 0

    def test_vector_records_batch_stats(self):
        netlist = build_random_netlist(num_gates=30, seed=3)
        annotation = annotation_from_design_delays(
            netlist, SyntheticDelayModel(seed=3).build(netlist)
        )
        stimulus = build_random_stimulus(netlist, DURATION, seed=33)
        scalar, vector = run_both_kernels(netlist, annotation, stimulus)
        assert scalar.stats.kernel_mode == "scalar"
        assert vector.stats.kernel_mode == "vector"
        assert vector.stats.level_batches > 0
        assert vector.stats.max_batch_tasks > 0
        # Both kernels count one logical invocation per (gate, window) task.
        assert vector.stats.kernel_invocations == scalar.stats.kernel_invocations
        assert vector.stats.mean_batch_tasks() > 0


class TestSimulateLevelDirect:
    """Drive simulate_level directly against the scalar kernel, one level."""

    def _gate_inputs(self, cell_name, delay):
        cell = DEFAULT_LIBRARY.get(cell_name)
        from repro.core import GateDelayTable

        table = GateDelayTable.uniform(cell.inputs, rise=delay, fall=delay)
        return GateKernelInputs(
            truth_table=DEFAULT_LIBRARY.truth_table(cell_name).table,
            delay_arrays=tuple(table.table_for(pin) for pin in cell.inputs),
            wire_rise=tuple(0.0 for _ in cell.inputs),
            wire_fall=tuple(0.0 for _ in cell.inputs),
        )

    def test_mixed_arity_level(self):
        class FakeGate:
            def __init__(self, name, nets):
                self.name = name
                self.output_net = name + "_out"
                self.input_nets = tuple(nets)

        pool = WaveformPool(1 << 16)
        waves = {
            "a": Waveform.from_initial_and_toggles(0, [100, 250, 400]),
            "b": Waveform.from_initial_and_toggles(1, [180, 330]),
            "c": Waveform.from_initial_and_toggles(0, [90, 95, 300]),
        }
        for net, wave in waves.items():
            pool.store_waveform(net, 0, wave)
        null_ptr = pool.store_padding_waveform()

        gates = [
            FakeGate("g_inv", ["a"]),
            FakeGate("g_nand", ["a", "b"]),
            FakeGate("g_maj", ["a", "b", "c"]),
        ]
        inputs = {
            "g_inv": self._gate_inputs("INV", 10),
            "g_nand": self._gate_inputs("NAND2", 15),
            "g_maj": self._gate_inputs("MAJ3", 20),
        }
        packed = pack_design([gates], inputs)
        level = packed.levels[0]
        pointers = np.full((3, 3), null_ptr, dtype=np.int64)
        caps = np.zeros(3, dtype=np.int64)
        for g, gate in enumerate(gates):
            for p, net in enumerate(gate.input_nets):
                pointers[g, p] = pool.pointer(net, 0)
                caps[g] += pool.toggle_count(net, 0)
        batch = simulate_level(pool.data, pointers, packed, level, 1, caps)

        for g, gate in enumerate(gates):
            scalar = simulate_gate_window(
                pool.data,
                [pool.pointer(net, 0) for net in gate.input_nets],
                inputs[gate.name],
            )
            assert int(batch.initial_values[g]) == scalar.initial_value
            assert batch.toggles_for(g).tolist() == scalar.toggle_times


class TestPoolLayout:
    def test_allocate_batch_matches_sequential_allocate(self):
        sizes = [3, 2, 7, 2, 5, 4, 9]
        sequential = WaveformPool(1 << 12)
        batched = WaveformPool(1 << 12)
        # Start both pools from an odd used_words so the base realignment of
        # the prefix-sum layout is exercised too.
        sequential.allocate(3)
        batched.allocate(3)
        expected = [sequential.allocate(size) for size in sizes]
        addresses = batched.allocate_batch(np.asarray(sizes, dtype=np.int64))
        assert addresses.tolist() == expected
        assert batched.used_words == sequential.used_words

    def test_allocate_batch_even_alignment(self):
        pool = WaveformPool(1 << 12)
        addresses = pool.allocate_batch(np.asarray([3, 3, 2, 5], dtype=np.int64))
        assert all(address % 2 == 0 for address in addresses.tolist())
        # Back-to-back with only parity padding between waveforms.
        assert addresses.tolist() == [0, 4, 8, 10]
        assert pool.used_words == 15

    def test_allocate_batch_overflow_raises(self):
        from repro.core import DeviceMemoryError

        pool = WaveformPool(16)
        with pytest.raises(DeviceMemoryError):
            pool.allocate_batch(np.asarray([10, 10], dtype=np.int64))

    def test_allocate_batch_rejects_undersized(self):
        pool = WaveformPool(1 << 12)
        with pytest.raises(ValueError):
            pool.allocate_batch(np.asarray([2, 1], dtype=np.int64))

    def test_store_level_outputs_roundtrip(self):
        pool = WaveformPool(1 << 12)
        initial_values = np.asarray([1, 0, 1], dtype=np.int64)
        toggle_counts = np.asarray([2, 0, 3], dtype=np.int64)
        toggle_starts = np.asarray([0, 2, 2], dtype=np.int64)
        toggle_buffer = np.asarray([10, 20, 7, 8, 9], dtype=np.int64)
        sizes = 2 + toggle_counts + (initial_values != 0)
        addresses = pool.allocate_batch(sizes)
        pool.store_level_outputs(
            ["x", "y", "z"], [0], addresses,
            initial_values, toggle_buffer, toggle_starts, toggle_counts,
        )
        assert pool.read_waveform("x", 0) == Waveform.from_initial_and_toggles(1, [10, 20])
        assert pool.read_waveform("y", 0) == Waveform.constant(0)
        assert pool.read_waveform("z", 0) == Waveform.from_initial_and_toggles(1, [7, 8, 9])
        assert pool.toggle_count("z", 0) == 3

    def test_readback_is_zero_copy_view(self):
        pool = WaveformPool(1 << 12)
        pool.store_waveform("n", 0, Waveform.from_initial_and_toggles(0, [5, 9]))
        wave = pool.read_waveform("n", 0)
        assert np.shares_memory(wave.data, pool.data)
        assert not wave.data.flags.writeable
        assert wave.toggle_count() == 2

    def test_waveform_copies_writeable_arrays(self):
        """Mutating a caller array must not invalidate a validated waveform."""
        raw = np.asarray([0, 10, EOW], dtype=np.int64)
        wave = Waveform.from_array(raw)
        raw[2] = 7  # would destroy the EOW terminator if aliased
        assert int(wave.data[-1]) == EOW
        assert not np.shares_memory(wave.data, raw)


class TestOverflowGuards:
    def test_store_kernel_output_rejects_eow_toggle(self):
        pool = WaveformPool(1 << 12)
        address = pool.allocate(8)
        with pytest.raises(TimestampOverflowError):
            pool.store_kernel_output("n", 0, address, 0, [5, EOW])

    def test_store_level_outputs_rejects_eow_toggle(self):
        pool = WaveformPool(1 << 12)
        addresses = pool.allocate_batch(np.asarray([4], dtype=np.int64))
        with pytest.raises(TimestampOverflowError):
            pool.store_level_outputs(
                ["n"], [0], addresses,
                np.asarray([0], dtype=np.int64),
                np.asarray([EOW], dtype=np.int64),
                np.asarray([0], dtype=np.int64),
                np.asarray([1], dtype=np.int64),
            )

    @pytest.mark.parametrize("kernel", ["scalar", "vector"])
    def test_engine_rejects_near_sentinel_stimulus(self, kernel):
        """Regression: timestamps near EOW raise instead of corrupting."""
        netlist = build_random_netlist(num_gates=10, seed=2)
        annotation = annotation_from_design_delays(
            netlist, SyntheticDelayModel(seed=2).build(netlist)
        )
        stimulus = {
            net: Waveform.from_initial_and_toggles(0, [EOW - 3])
            for net in netlist.source_nets()
        }
        config = SimConfig(kernel=kernel, cycle_parallelism=1)
        engine = GatspiEngine(netlist, annotation=annotation, config=config)
        with pytest.raises(StimulusError, match="EOW"):
            engine.simulate(stimulus, duration=EOW - 1)


class TestBackendSpecs:
    def test_parse_backend_spec(self):
        assert parse_backend_spec("gatspi") == ("gatspi", {})
        assert parse_backend_spec("gatspi:kernel=scalar") == (
            "gatspi",
            {"kernel": "scalar"},
        )
        name, options = parse_backend_spec("threaded-cpu:num_workers=8,barrier_overhead=0.5")
        assert name == "threaded-cpu"
        assert options == {"num_workers": 8, "barrier_overhead": 0.5}

    def test_parse_backend_spec_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_backend_spec("gatspi:kernel")

    def test_resolve_backend_prepares_kernel_variant(self):
        netlist = build_random_netlist(num_gates=12, seed=4)
        backend, options = resolve_backend("gatspi:kernel=scalar")
        session = backend.prepare(netlist, **options)
        assert session.engine.config.kernel == "scalar"
        session = get_backend("gatspi").prepare(netlist)
        assert session.engine.config.kernel == "vector"


class TestMultiGpuPackedPartitioning:
    def test_vector_and_scalar_shares_identical(self):
        netlist = build_random_netlist(num_gates=35, seed=31)
        annotation = annotation_from_design_delays(
            netlist, SyntheticDelayModel(seed=31).build(netlist)
        )
        stimulus = build_random_stimulus(netlist, 8 * 500, seed=310)
        config = SimConfig(clock_period=500, cycle_parallelism=4)
        results = {}
        for kernel in ("scalar", "vector"):
            results[kernel] = simulate_multi_gpu(
                netlist, stimulus, cycles=8, num_devices=4,
                annotation=annotation, config=config,
                backend=f"gatspi:kernel={kernel}",
            )
        assert results["vector"].toggle_counts == results["scalar"].toggle_counts
        assert results["vector"].kernel_mode == "vector"
        assert results["scalar"].kernel_mode == "scalar"
        # One prepared session served every share: the packed level tensors
        # were partitioned across devices, never re-derived.
        assert results["vector"].compiled_once
        assert all(s.level_batches > 0 for s in results["vector"].shares)
        assert all(s.max_batch_tasks > 0 for s in results["vector"].shares)
