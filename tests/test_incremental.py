"""Differential tests for incremental re-simulation (``Session.rerun``).

The contract under test: ``rerun(edits)`` on a live session must be
**bit-identical** to a cold ``prepare(edited_design).run(...)`` — same
waveforms, same toggle counts — while re-executing only the edits' cone
of influence.  The matrix covers every edit type (delay, retype, rewire,
buffer insertion/removal), edits that land on deduplicated truth/delay
rows, edits at the first and last logic levels, empty-edit no-op reruns,
undo round trips (journal returns to the base fingerprint), the vector
and scalar kernels, window-axis sharded execution, every available array
backend, strict-mode analysis gating with rollback, the glitch-ECO flow
equivalence, and serve-layer delta requests.
"""

from __future__ import annotations

import copy

import pytest

from repro.analysis import AnalysisWarning, DesignAnalysisError
from repro.api import resolve_backend
from repro.core import SimConfig, clear_compile_cache
from repro.core.compile_cache import fingerprint_annotation, fingerprint_netlist
from repro.core.edits import (
    InsertBuffer,
    RetypeGate,
    RewirePin,
    SetPinDelay,
    SetWireDelay,
)
from repro.core.incremental import derive_compile_key
from repro.core.xp import available_array_backends
from repro.netlist import levelize
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.serve import (
    ServeRequest,
    SimulationService,
    UnknownBaseDesignError,
)
from repro.testing import build_random_netlist, build_random_stimulus

DURATION = 24_000

#: Session flavors that must all support bit-identical incremental rerun.
SPECS = (
    "gatspi",
    "gatspi:kernel=scalar",
    "gatspi-sharded:shards=2,workers=2",
)
DEVICES = available_array_backends()

EDIT_KINDS = (
    "pin-delay",
    "wire-delay",
    "retype",
    "rewire",
    "insert-buffer",
    "level-boundary",
)

#: Kinds that never force a re-levelize: partial execution is guaranteed.
NON_STRUCTURAL_KINDS = ("pin-delay", "wire-delay", "retype", "level-boundary")

_RETYPE_PAIRS = {
    "AND2": "NAND2", "NAND2": "AND2",
    "OR2": "NOR2", "NOR2": "OR2",
    "XOR2": "XNOR2", "XNOR2": "XOR2",
}


@pytest.fixture(autouse=True)
def fresh_compile_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def _prepare_design(seed: int, num_inputs: int = 6, num_gates: int = 36):
    netlist = build_random_netlist(
        num_inputs=num_inputs, num_gates=num_gates, seed=seed
    )
    delays = SyntheticDelayModel(seed=seed).build(netlist)
    annotation = annotation_from_design_delays(netlist, delays)
    return netlist, annotation


def _session(spec, netlist, annotation, device=None, config=None):
    backend, options = resolve_backend(spec)
    if device is not None:
        config = (config or SimConfig()).with_updates(device=device)
    return backend.prepare(
        netlist, annotation=annotation, config=config, **options
    )


def _gate_with_inputs(netlist, min_inputs=2, skip=0):
    """Deterministic pick: the ``skip``-th gate with >= min_inputs pins."""
    found = 0
    for inst in netlist.combinational_instances():
        if inst.cell.num_inputs >= min_inputs:
            if found == skip:
                return inst
            found += 1
    raise AssertionError("fixture netlist has no gate with enough inputs")


def _retype_target(netlist):
    """A gate whose cell has a pin-compatible partner AND is shared with at
    least one other gate, so the edit lands on a deduplicated truth row."""
    by_cell = {}
    for inst in netlist.combinational_instances():
        by_cell.setdefault(inst.cell_name, []).append(inst)
    for cell, insts in by_cell.items():
        if cell in _RETYPE_PAIRS and len(insts) >= 2:
            return insts[0], _RETYPE_PAIRS[cell]
    for cell, insts in by_cell.items():  # fall back to a unique-cell gate
        if cell in _RETYPE_PAIRS:
            return insts[0], _RETYPE_PAIRS[cell]
    raise AssertionError("fixture netlist has no retypeable 2-input gate")


def _build_edits(netlist, kind):
    if kind == "pin-delay":
        gate = _gate_with_inputs(netlist)
        return [SetPinDelay(gate=gate.name, pin=gate.cell.inputs[1],
                            rise=37.0, fall=29.0)]
    if kind == "wire-delay":
        gate = _gate_with_inputs(netlist, skip=1)
        return [SetWireDelay(gate=gate.name, pin=gate.cell.inputs[0],
                             rise=11.0, fall=13.0)]
    if kind == "retype":
        gate, new_cell = _retype_target(netlist)
        return [RetypeGate(gate=gate.name, cell=new_cell)]
    if kind == "rewire":
        # Reconnect a deep gate's pin to a primary-input net: always
        # acyclic, but changes the cone feeding everything downstream.
        lev = levelize(netlist)
        deep = netlist.instances[lev.levels[-1][0]]
        sources = sorted(netlist.source_nets())
        current = deep.connections[deep.cell.inputs[0]]
        target = next(net for net in sources if net != current)
        return [RewirePin(gate=deep.name, pin=deep.cell.inputs[0], net=target)]
    if kind == "insert-buffer":
        gate = _gate_with_inputs(netlist)
        return [InsertBuffer(gate=gate.name, pin=gate.cell.inputs[0],
                             delay=40.0)]
    if kind == "level-boundary":
        # One edit on the very first level, one on the very last, in a
        # single batch: the dirty set must stay correct at both seams.
        lev = levelize(netlist)
        first = netlist.instances[lev.levels[0][0]]
        last = netlist.instances[lev.levels[-1][0]]
        edits = [SetPinDelay(gate=first.name, pin=first.cell.inputs[0],
                             rise=23.0, fall=19.0)]
        if last.name != first.name:
            edits.append(SetPinDelay(gate=last.name, pin=last.cell.inputs[0],
                                     rise=31.0, fall=41.0))
        return edits
    raise AssertionError(kind)


def _cold_run(spec, netlist, annotation, edits, stimulus,
              device=None, duration=DURATION):
    """Cold reference: fresh design copies, plain ``Edit.apply``, cold
    compile, full run — what the rerun result must match byte-for-byte."""
    ref_netlist = copy.deepcopy(netlist)
    ref_annotation = copy.deepcopy(annotation)
    for edit in edits:
        edit.apply(ref_netlist, ref_annotation)
    clear_compile_cache()
    session = _session(spec, ref_netlist, ref_annotation, device=device)
    return session.run(stimulus, duration=duration)


def _assert_bit_identical(reference, candidate, context):
    assert reference.toggle_counts == candidate.toggle_counts, (
        f"{context}: toggle counts diverge on "
        f"{reference.differing_nets(candidate)}"
    )
    assert set(reference.waveforms) == set(candidate.waveforms), context
    for net in reference.waveforms:
        assert reference.waveforms[net] == candidate.waveforms[net], (
            f"{context}: waveform diverges on net {net!r}"
        )


# ======================================================================
# Core differential matrix: rerun vs cold run, per spec / device / edit
# ======================================================================
@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("kind", EDIT_KINDS)
@pytest.mark.parametrize("spec", SPECS)
def test_rerun_matches_cold_run(spec, kind, device):
    netlist, annotation = _prepare_design(seed=3)
    stimulus = build_random_stimulus(netlist, DURATION, seed=17)
    edits = _build_edits(netlist, kind)
    reference = _cold_run(spec, netlist, annotation, edits, stimulus,
                          device=device)

    session = _session(spec, netlist, annotation, device=device)
    session.run(stimulus, duration=DURATION)
    result = session.rerun(edits, stimulus=stimulus, duration=DURATION)

    _assert_bit_identical(reference, result, f"{spec} {kind} {device}")
    if kind in NON_STRUCTURAL_KINDS:
        assert result.stats.incremental, f"{spec} {kind}: expected partial run"
        assert 0 < result.stats.dirty_gates < len(list(
            netlist.combinational_instances()
        ))
        assert 0.0 < result.stats.dirty_fraction < 1.0


@pytest.mark.parametrize("spec", SPECS)
def test_undo_round_trip_restores_baseline(spec):
    """rerun(edits) then rerun(undo) is bit-identical to the baseline and
    returns the journal (and hence the compile key) to the base design."""
    netlist, annotation = _prepare_design(seed=5)
    stimulus = build_random_stimulus(netlist, DURATION, seed=55)
    base_netlist_fp = fingerprint_netlist(netlist)
    base_annotation_fp = fingerprint_annotation(annotation, netlist)

    session = _session(spec, netlist, annotation)
    baseline = session.run(stimulus, duration=DURATION)

    edits = _build_edits(netlist, "insert-buffer") + _build_edits(
        netlist, "pin-delay"
    )
    session.rerun(edits, stimulus=stimulus, duration=DURATION)
    receipt = session.last_edit_receipt
    assert receipt is not None and len(receipt.edits) == len(edits)

    restored = session.rerun(
        receipt.undo_edits, stimulus=stimulus, duration=DURATION
    )
    _assert_bit_identical(baseline, restored, f"{spec} undo round trip")
    # The design objects are byte-identical to the pre-edit state ...
    assert fingerprint_netlist(netlist) == base_netlist_fp
    assert fingerprint_annotation(annotation, netlist) == base_annotation_fp
    # ... and the inserted buffer is gone again.
    assert not any("glitchfix" in name for name in netlist.instances)


@pytest.mark.parametrize("spec", ("gatspi", "gatspi:kernel=scalar"))
def test_empty_edit_rerun_is_noop(spec):
    netlist, annotation = _prepare_design(seed=7)
    stimulus = build_random_stimulus(netlist, DURATION, seed=70)
    session = _session(spec, netlist, annotation)
    baseline = session.run(stimulus, duration=DURATION)
    result = session.rerun([], stimulus=stimulus, duration=DURATION)
    _assert_bit_identical(baseline, result, f"{spec} empty rerun")
    assert result.stats.incremental
    assert result.stats.dirty_gates == 0
    assert result.stats.dirty_fraction == 0.0


def test_journal_chained_compile_key_round_trip():
    """Apply -> undo cancels the journal tail-first, so the compile key
    chains away from the base and comes back to it exactly."""
    netlist, annotation = _prepare_design(seed=9)
    stimulus = build_random_stimulus(netlist, DURATION, seed=90)
    session = _session("gatspi", netlist, annotation)
    session.run(stimulus, duration=DURATION)
    engine = session.engine

    base_key = derive_compile_key("base", engine.journal)
    assert base_key == "base"

    edits = _build_edits(netlist, "pin-delay")
    receipt = session.apply_edits(edits)
    edited_key = derive_compile_key("base", engine.journal)
    assert edited_key != "base" and edited_key.startswith("base~eco:")

    session.apply_edits(receipt.undo_edits)
    assert derive_compile_key("base", engine.journal) == "base"


# ======================================================================
# Analysis gating on rerun
# ======================================================================
class TestAnalysisGating:
    def test_strict_mode_rejects_and_rolls_back(self):
        netlist, annotation = _prepare_design(seed=11)
        stimulus = build_random_stimulus(netlist, DURATION, seed=110)
        base_fp = fingerprint_annotation(annotation, netlist)
        session = _session(
            "gatspi", netlist, annotation,
            config=SimConfig(analysis="strict"),
        )
        baseline = session.run(stimulus, duration=DURATION)

        gate = _gate_with_inputs(netlist)
        bad = SetPinDelay(gate=gate.name, pin=gate.cell.inputs[0],
                          rise=-5.0, fall=-5.0)
        with pytest.raises(DesignAnalysisError):
            session.rerun([bad], stimulus=stimulus, duration=DURATION)

        # Rolled back: annotation unchanged, journal at base, and the
        # session still reruns cleanly from the baseline state.
        assert fingerprint_annotation(annotation, netlist) == base_fp
        assert derive_compile_key("k", session.engine.journal) == "k"
        again = session.rerun([], stimulus=stimulus, duration=DURATION)
        _assert_bit_identical(baseline, again, "post-rollback rerun")

    def test_strict_mode_rejects_on_sharded(self):
        netlist, annotation = _prepare_design(seed=11)
        stimulus = build_random_stimulus(netlist, DURATION, seed=110)
        session = _session(
            "gatspi-sharded:shards=2,workers=2", netlist, annotation,
            config=SimConfig(analysis="strict"),
        )
        session.run(stimulus, duration=DURATION)
        gate = _gate_with_inputs(netlist)
        bad = SetPinDelay(gate=gate.name, pin=gate.cell.inputs[0],
                          rise=-3.0, fall=-3.0)
        with pytest.raises(DesignAnalysisError):
            session.rerun([bad], stimulus=stimulus, duration=DURATION)
        assert not any(
            "glitchfix" in name for name in netlist.instances
        )

    def test_warn_mode_warns_and_applies(self):
        netlist, annotation = _prepare_design(seed=13)
        stimulus = build_random_stimulus(netlist, DURATION, seed=130)
        session = _session("gatspi", netlist, annotation)  # default: warn
        session.run(stimulus, duration=DURATION)
        gate = _gate_with_inputs(netlist)
        bad = SetPinDelay(gate=gate.name, pin=gate.cell.inputs[0],
                          rise=-2.0, fall=-2.0)
        with pytest.warns(AnalysisWarning):
            session.rerun([bad], stimulus=stimulus, duration=DURATION)
        # Warn mode keeps the edit applied; undo restores it.
        receipt = session.last_edit_receipt
        session.apply_edits(receipt.undo_edits)

    def test_delay_only_edits_skip_structural_rules(self):
        """A delay-only rerun must not re-run structural rules: only the
        negative-delay rule is evaluated (satellite b's gating contract)."""
        netlist, annotation = _prepare_design(seed=13)
        stimulus = build_random_stimulus(netlist, DURATION, seed=130)
        session = _session("gatspi", netlist, annotation)
        session.run(stimulus, duration=DURATION)
        gate = _gate_with_inputs(netlist)
        good = SetPinDelay(gate=gate.name, pin=gate.cell.inputs[0],
                           rise=8.0, fall=8.0)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", AnalysisWarning)
            session.rerun([good], stimulus=stimulus, duration=DURATION)


# ======================================================================
# Glitch-ECO flow equivalence (satellite a)
# ======================================================================
class TestFlowEquivalence:
    def test_flow_leaves_design_untouched_and_matches_cold_replay(self):
        from repro.bench import designs
        from repro.opt import GlitchOptimizationFlow
        from repro.waveforms import TestbenchSpec, stimulus_for_netlist

        netlist = designs.array_multiplier(bits=4)
        delays = SyntheticDelayModel(seed=9, wire_delay_range=(0, 1)).build(
            netlist
        )
        annotation = annotation_from_design_delays(netlist, delays)
        spec = TestbenchSpec(name="mult", cycles=30, activity_factor=0.6,
                             seed=9)
        stimulus = stimulus_for_netlist(netlist, spec, kind="random")
        config = SimConfig(clock_period=1000, cycle_parallelism=2)

        base_netlist_fp = fingerprint_netlist(netlist)
        base_annotation_fp = fingerprint_annotation(annotation, netlist)

        flow = GlitchOptimizationFlow(
            netlist, annotation=annotation, config=config
        )
        outcome = flow.run(stimulus, cycles=spec.cycles, max_gates_to_fix=10)
        assert outcome.fixes, "expected the multiplier to need fixes"

        # The caller's design is restored byte-for-byte.
        assert fingerprint_netlist(netlist) == base_netlist_fp
        assert fingerprint_annotation(annotation, netlist) == base_annotation_fp

        # Replaying the recorded fixes on a cold copy (the old
        # deepcopy-based flow, in effect) reproduces the optimized run.
        work_netlist = copy.deepcopy(netlist)
        work_annotation = copy.deepcopy(annotation)
        for fix in outcome.fixes:
            InsertBuffer(
                gate=fix.gate, pin=fix.pin, delay=fix.added_delay,
                buffer_name=fix.inserted_buffer,
            ).apply(work_netlist, work_annotation)
        clear_compile_cache()
        session = _session("gatspi", work_netlist, work_annotation,
                           config=config)
        replay = session.run(stimulus, cycles=spec.cycles)

        from repro.api import get_backend
        from repro.power import PowerModel, analyze_glitches

        functional = get_backend("zero-delay").prepare(
            work_netlist, annotation=work_annotation, config=config
        ).run(stimulus, duration=spec.cycles * config.clock_period)
        replay_glitch = analyze_glitches(
            work_netlist, replay, functional.toggle_counts,
            PowerModel(work_netlist),
        )
        assert (
            replay_glitch.total_glitch_toggles
            == outcome.optimized_glitch.total_glitch_toggles
        )
        assert replay_glitch.total_power.total_w == pytest.approx(
            outcome.optimized_power.total_w
        )


# ======================================================================
# Serve-layer delta requests (tentpole consumer rewire)
# ======================================================================
class TestServeDeltas:
    CONFIG = SimConfig(clock_period=500, cycle_parallelism=4)

    def _full_request(self, netlist, annotation, stimulus, tag=None):
        return ServeRequest(
            netlist=netlist, stimulus=stimulus, annotation=annotation,
            config=self.CONFIG, duration=DURATION, tag=tag,
        )

    def test_delta_request_matches_cold_edited_run(self):
        netlist, annotation = _prepare_design(seed=21, num_gates=24)
        stimulus = build_random_stimulus(netlist, DURATION, seed=210)
        edits = _build_edits(netlist, "pin-delay")
        reference = _cold_run(
            "gatspi", netlist, annotation, edits, stimulus
        )
        clear_compile_cache()
        with SimulationService(max_workers=1) as service:
            base = service.run(
                self._full_request(netlist, annotation, stimulus)
            )
            delta = service.run(ServeRequest(
                base_key=base.session_key, edits=tuple(edits),
                stimulus=stimulus, duration=DURATION, tag="eco",
            ))
            _assert_bit_identical(reference, delta.result, "serve delta")
            assert delta.tag == "eco"
            assert delta.session_reused
            # The shared session was restored to the base design: a
            # repeat full request reproduces the baseline bit-for-bit.
            repeat = service.run(
                self._full_request(netlist, annotation, stimulus)
            )
            _assert_bit_identical(
                base.result, repeat.result, "base restored after delta"
            )

    def test_unknown_base_key_rejected(self):
        with SimulationService(max_workers=1) as service:
            with pytest.raises(UnknownBaseDesignError):
                service.run(ServeRequest(
                    base_key="no-such-session", edits=(),
                    duration=DURATION,
                ))

    def test_full_and_delta_fields_are_exclusive(self):
        netlist, annotation = _prepare_design(seed=22, num_gates=24)
        stimulus = build_random_stimulus(netlist, DURATION, seed=220)
        with SimulationService(max_workers=1) as service:
            with pytest.raises(ValueError):
                service.submit(ServeRequest(
                    netlist=netlist, stimulus=stimulus,
                    annotation=annotation, base_key="also-a-base",
                    duration=DURATION,
                ))
            with pytest.raises(ValueError):
                service.submit(ServeRequest(stimulus=stimulus,
                                            duration=DURATION))
