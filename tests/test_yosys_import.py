"""Yosys JSON netlist ingestion: golden fixtures and error taxonomy.

The importer (:mod:`repro.netlist.yosys`) maps Yosys's simple-cell
(``write_json`` after ``abc -g simple``) vocabulary onto the built-in
library.  These tests pin three things:

* **golden structure** — the checked-in fixtures (``counter``, ``lfsr``,
  ``alu``) import to exactly the ports, cells, register kinds, and init
  values their JSON encodes, and pass strict design-rule analysis;
* **semantics** — imported designs simulate correctly through the
  clocked loop and agree with the event-driven oracle;
* **error taxonomy** — unsupported cell types, x/z constants, malformed
  documents, and ambiguous module selection each raise their documented
  exception with an actionable message.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import analyze_design
from repro.api import get_backend
from repro.core import SimConfig
from repro.core.waveform import Waveform
from repro.netlist import (
    UnsupportedCellError,
    YosysFormatError,
    YosysImportError,
    fixture_path,
    import_yosys_json,
    load_fixture,
    read_yosys_json,
)

FIXTURES = ("counter", "lfsr", "alu")
PERIOD = 1000


def _run_cycles(netlist, stimulus, cycles, backend="gatspi"):
    config = SimConfig(clock_period=PERIOD, store_waveforms=True)
    return get_backend(backend).prepare(netlist, config=config).run_cycles(
        stimulus, cycles
    )


def _module(cells, ports=None, netnames=None):
    """Wrap a cells dict into a minimal single-module Yosys document."""
    return {
        "modules": {
            "m": {
                "ports": ports or {},
                "cells": cells,
                "netnames": netnames or {},
            }
        }
    }


# ---------------------------------------------------------------------------
# Golden fixture structure
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", FIXTURES)
def test_fixture_loads_and_passes_strict_analysis(name):
    netlist = load_fixture(name)
    report = analyze_design(netlist)
    assert not report.findings, [f.rule_id for f in report.findings]


def test_counter_fixture_golden():
    netlist = load_fixture("counter")
    assert netlist.name == "counter"
    assert sorted(netlist.inputs) == ["clk", "rst_n"]
    assert sorted(netlist.outputs) == [f"count[{i}]" for i in range(4)]
    seq = netlist.sequential_instances()
    assert sorted((i.name, i.cell.name) for i in seq) == [
        (f"count_reg[{i}]", "DFFR") for i in range(4)
    ]
    assert all(netlist.initial_value_of(i.name) == 0 for i in seq)


def test_lfsr_fixture_golden():
    netlist = load_fixture("lfsr")
    assert netlist.name == "lfsr8"
    assert sorted(netlist.inputs) == ["clk"]
    assert sorted(netlist.outputs) == sorted(f"q[{i}]" for i in range(8))
    seq = netlist.sequential_instances()
    assert len(seq) == 8
    assert {i.cell.name for i in seq} == {"DFF"}
    # XNOR feedback taps: two XOR2 plus the final XNOR2.
    kinds = sorted(
        inst.cell.name
        for inst in netlist.instances.values()
        if not inst.is_sequential
    )
    assert kinds == ["XNOR2", "XOR2", "XOR2"]


def test_alu_fixture_golden():
    netlist = load_fixture("alu")
    assert netlist.name == "scan_alu"
    assert sorted(netlist.inputs) == [
        "b[0]", "b[1]", "b[2]", "b[3]", "clk", "rst_n", "scan_en", "scan_in",
    ]
    assert sorted(netlist.outputs) == [
        "acc[0]", "acc[1]", "acc[2]", "acc[3]", "scan_out",
    ]
    seq = netlist.sequential_instances()
    assert sorted((i.name, i.cell.name) for i in seq) == [
        (f"acc_reg[{i}]", "DFFR") for i in range(4)
    ]
    # scan_out aliases acc[3]'s bit: the importer inserts an explicit BUF.
    alias = netlist.instances["scan_out_port_buf"]
    assert alias.cell.name == "BUF"
    assert alias.output_net() == "scan_out"
    # Four $_MUX_ scan muxes map to MUX2.
    muxes = [
        inst
        for inst in netlist.instances.values()
        if inst.cell.name == "MUX2"
    ]
    assert len(muxes) == 4


@pytest.mark.parametrize("name", FIXTURES)
def test_read_yosys_json_matches_load_fixture(name):
    from_path = read_yosys_json(fixture_path(name))
    via_helper = load_fixture(name)
    assert sorted(from_path.instances) == sorted(via_helper.instances)
    assert from_path.nets == via_helper.nets


def test_fixture_path_unknown_name_lists_available():
    with pytest.raises(YosysImportError, match=r"alu.*counter.*lfsr"):
        fixture_path("does_not_exist")


# ---------------------------------------------------------------------------
# Imported designs simulate correctly
# ---------------------------------------------------------------------------


def test_imported_counter_counts():
    netlist = load_fixture("counter")
    result = _run_cycles(netlist, {"rst_n": Waveform.constant(1)}, 6)
    value = sum(
        result.register_state[f"count_reg[{i}]"] << i for i in range(4)
    )
    assert value == 6


def test_imported_lfsr_matches_builder_lfsr():
    """The JSON fixture and repro.testing.build_lfsr step identically."""
    from repro.testing import build_lfsr

    cycles = 20
    fixture = _run_cycles(load_fixture("lfsr"), {}, cycles)
    builder = _run_cycles(build_lfsr(8), {}, cycles)
    assert [
        fixture.register_state[f"q_reg[{i}]"] for i in range(8)
    ] == [builder.register_state[f"q_reg[{i}]"] for i in range(8)]


def test_imported_alu_scan_chain_shifts():
    netlist = load_fixture("alu")
    stimulus = {
        "rst_n": Waveform.constant(1),
        "scan_en": Waveform.constant(1),
        "scan_in": Waveform.constant(1),
        "b[0]": Waveform.constant(0),
        "b[1]": Waveform.constant(0),
        "b[2]": Waveform.constant(0),
        "b[3]": Waveform.constant(0),
    }
    result = _run_cycles(netlist, stimulus, 4)
    # After 4 shifts of constant 1 the whole chain is full.
    assert all(
        result.register_state[f"acc_reg[{i}]"] == 1 for i in range(4)
    )
    reference = _run_cycles(netlist, stimulus, 4, backend="event")
    assert result.register_state == reference.register_state


# ---------------------------------------------------------------------------
# Cell-mapping coverage via inline documents
# ---------------------------------------------------------------------------


def test_dffe_sdff_and_latch_mappings():
    doc = _module(
        {
            "r_en": {
                "type": "$_DFFE_PP_",
                "connections": {"C": [2], "D": [3], "E": [4], "Q": [5]},
            },
            "r_sync": {
                "type": "$_SDFF_PN0_",
                "connections": {"C": [2], "D": [3], "R": [6], "Q": [7]},
            },
            "lat": {
                "type": "$_DLATCH_P_",
                "connections": {"E": [4], "D": [3], "Q": [8]},
            },
        },
        ports={
            "clk": {"direction": "input", "bits": [2]},
            "d": {"direction": "input", "bits": [3]},
            "en": {"direction": "input", "bits": [4]},
            "rst_n": {"direction": "input", "bits": [6]},
            "q_en": {"direction": "output", "bits": [5]},
            "q_sync": {"direction": "output", "bits": [7]},
            "q_lat": {"direction": "output", "bits": [8]},
        },
    )
    netlist = import_yosys_json(doc)
    cells = {
        inst.name: inst.cell.name for inst in netlist.instances.values()
    }
    assert cells["r_en"] == "DFFE"
    assert cells["r_sync"] == "SDFFR"
    assert cells["lat"] == "LATCH"
    assert netlist.instances["r_en"].connections["EN"] == "en"
    assert netlist.instances["r_sync"].connections["RN"] == "rst_n"
    assert netlist.instances["lat"].connections["G"] == "en"


def test_aoi_oai_and_mux_mappings():
    doc = _module(
        {
            "g_aoi3": {
                "type": "$_AOI3_",
                "connections": {"A": [2], "B": [3], "C": [4], "Y": [5]},
            },
            "g_oai4": {
                "type": "$_OAI4_",
                "connections": {"A": [2], "B": [3], "C": [4], "D": [5], "Y": [6]},
            },
            "g_mux": {
                "type": "$_MUX_",
                "connections": {"A": [2], "B": [3], "S": [4], "Y": [7]},
            },
        },
        ports={
            "a": {"direction": "input", "bits": [2]},
            "b": {"direction": "input", "bits": [3]},
            "c": {"direction": "input", "bits": [4]},
            "y": {"direction": "output", "bits": [6]},
            "z": {"direction": "output", "bits": [7]},
        },
    )
    netlist = import_yosys_json(doc)
    cells = {
        inst.name: inst.cell.name for inst in netlist.instances.values()
    }
    assert cells["g_aoi3"] == "AOI21"
    assert cells["g_oai4"] == "OAI22"
    assert cells["g_mux"] == "MUX2"
    # $_MUX_ S pin maps onto MUX2's select.
    assert netlist.instances["g_mux"].connections["S"] == "c"


def test_constant_bits_become_tie_cells():
    doc = _module(
        {
            "g": {
                "type": "$_AND_",
                "connections": {"A": [2], "B": ["1"], "Y": [3]},
            },
            "h": {
                "type": "$_OR_",
                "connections": {"A": [2], "B": ["0"], "Y": [4]},
            },
        },
        ports={
            "a": {"direction": "input", "bits": [2]},
            "y": {"direction": "output", "bits": [3]},
            "z": {"direction": "output", "bits": [4]},
        },
    )
    netlist = import_yosys_json(doc)
    cells = {
        inst.name: inst.cell.name for inst in netlist.instances.values()
    }
    assert cells["_tie1_"] == "TIEHI"
    assert cells["_tie0_"] == "TIELO"
    assert netlist.instances["g"].connections["B"] == "_const1_"
    assert netlist.instances["h"].connections["B"] == "_const0_"


def test_init_attribute_applied_msb_first():
    doc = _module(
        {
            "r0": {
                "type": "$_DFF_P_",
                "connections": {"C": [2], "D": [3], "Q": [4]},
            },
            "r1": {
                "type": "$_DFF_P_",
                "connections": {"C": [2], "D": [4], "Q": [5]},
            },
        },
        ports={
            "clk": {"direction": "input", "bits": [2]},
            "d": {"direction": "input", "bits": [3]},
            "q": {"direction": "output", "bits": [4, 5]},
        },
        netnames={
            "q": {"bits": [4, 5], "attributes": {"init": "01"}},
        },
    )
    netlist = import_yosys_json(doc)
    # "01" is MSB-first: q[1]=0, q[0]=1.
    assert netlist.initial_value_of("r0") == 1
    assert netlist.initial_value_of("r1") == 0


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------


def test_unsupported_cell_lists_all_offenders():
    doc = _module(
        {
            "g1": {"type": "$add", "connections": {}},
            "g2": {"type": "$_DFF_N_", "connections": {}},
            "g3": {"type": "$add", "connections": {}},
        }
    )
    with pytest.raises(UnsupportedCellError) as excinfo:
        import_yosys_json(doc)
    err = excinfo.value
    assert err.cell_type == "$_DFF_N_"
    assert "$add" in str(err) and "$_DFF_N_" in str(err)
    # The supported vocabulary is listed for discoverability.
    assert "$_MUX_" in str(err)


def test_x_constant_rejected():
    doc = _module(
        {
            "g": {
                "type": "$_NOT_",
                "connections": {"A": ["x"], "Y": [2]},
            }
        },
        ports={"y": {"direction": "output", "bits": [2]}},
    )
    with pytest.raises(YosysFormatError, match="x"):
        import_yosys_json(doc)


def test_multi_bit_connection_rejected():
    doc = _module(
        {
            "g": {
                "type": "$_NOT_",
                "connections": {"A": [2, 3], "Y": [4]},
            }
        },
        ports={
            "a": {"direction": "input", "bits": [2, 3]},
            "y": {"direction": "output", "bits": [4]},
        },
    )
    with pytest.raises(YosysFormatError):
        import_yosys_json(doc)


def test_document_without_modules_rejected():
    with pytest.raises(YosysFormatError, match="module"):
        import_yosys_json({"creator": "yosys"})


def test_multi_module_requires_top():
    doc = {
        "modules": {
            "m1": {"ports": {}, "cells": {}, "netnames": {}},
            "m2": {"ports": {}, "cells": {}, "netnames": {}},
        }
    }
    with pytest.raises(YosysFormatError, match="top"):
        import_yosys_json(doc)
    # Naming the module explicitly resolves the ambiguity.
    netlist = import_yosys_json(
        _multi_with_cells(), top="real", name="picked"
    )
    assert netlist.name == "picked"


def _multi_with_cells():
    return {
        "modules": {
            "decoy": {"ports": {}, "cells": {}, "netnames": {}},
            "real": {
                "ports": {
                    "a": {"direction": "input", "bits": [2]},
                    "y": {"direction": "output", "bits": [3]},
                },
                "cells": {
                    "g": {
                        "type": "$_NOT_",
                        "connections": {"A": [2], "Y": [3]},
                    }
                },
                "netnames": {},
            },
        }
    }


def test_top_attribute_selects_module():
    doc = _multi_with_cells()
    doc["modules"]["real"]["attributes"] = {"top": "00000000000000000000000000000001"}
    netlist = import_yosys_json(doc)
    assert netlist.name == "real"


def test_json_string_and_invalid_json():
    doc = _multi_with_cells()
    netlist = import_yosys_json(json.dumps(doc), top="real")
    assert "g" in netlist.instances
    with pytest.raises(YosysFormatError):
        import_yosys_json("{not valid json")


def test_unknown_top_rejected():
    with pytest.raises(YosysFormatError, match="nope"):
        import_yosys_json(_multi_with_cells(), top="nope")
