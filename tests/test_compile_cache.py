"""Tests for the process-wide compiled-design cache.

Repeated sessions over the same (netlist, annotation, config) triple must
reuse the packed design tensors; any change to the inputs the compile
consumes — netlist structure, delay tables, the ``full_sdf`` ablation, the
device — must miss.  Fingerprints are content-based, so structurally
identical copies (``deepcopy``) share a compile, and results stay
bit-identical whether they came from the cache or a fresh build.
"""

from __future__ import annotations

import copy

import pytest

from repro.api import get_backend
from repro.core import SimConfig, cache_info, clear_compile_cache
from repro.core.engine import GatspiEngine
from repro.sdf import SyntheticDelayModel, UnitDelayModel, annotation_from_design_delays
from repro.testing import build_random_netlist, build_random_stimulus


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def _design(seed=0):
    netlist = build_random_netlist(num_inputs=5, num_gates=20, seed=seed)
    delays = SyntheticDelayModel(seed=seed).build(netlist)
    return netlist, annotation_from_design_delays(netlist, delays)


class TestCacheReuse:
    def test_second_compile_reuses_packed_tensors(self):
        netlist, annotation = _design()
        first = GatspiEngine(netlist, annotation=annotation)
        first.compile()
        assert not first.compile_cache_hit
        second = GatspiEngine(netlist, annotation=annotation)
        second.compile()
        assert second.compile_cache_hit
        assert second.packed_design is first.packed_design
        assert second.compiled is first.compiled
        info = cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1

    def test_deepcopy_shares_a_compile(self):
        netlist, annotation = _design()
        GatspiEngine(netlist, annotation=annotation).compile()
        clone = GatspiEngine(
            copy.deepcopy(netlist), annotation=copy.deepcopy(annotation)
        )
        clone.compile()
        assert clone.compile_cache_hit

    def test_prepare_sessions_share_a_compile(self):
        netlist, annotation = _design()
        backend = get_backend("gatspi")
        a = backend.prepare(netlist, annotation=annotation)
        b = backend.prepare(netlist, annotation=annotation)
        assert b.engine.compile_cache_hit
        assert a.engine.packed_design is b.engine.packed_design

    def test_cached_results_bit_identical(self):
        netlist, annotation = _design(seed=3)
        stimulus = build_random_stimulus(netlist, 8_000, seed=7)
        backend = get_backend("gatspi")
        fresh = backend.prepare(netlist, annotation=annotation).run(
            stimulus, duration=8_000
        )
        cached = backend.prepare(netlist, annotation=annotation).run(
            stimulus, duration=8_000
        )
        assert fresh.toggle_counts == cached.toggle_counts
        for net in fresh.waveforms:
            assert fresh.waveforms[net] == cached.waveforms[net]


class TestCacheInvalidation:
    def test_different_annotation_misses(self):
        netlist, annotation = _design()
        GatspiEngine(netlist, annotation=annotation).compile()
        other = annotation_from_design_delays(
            netlist, UnitDelayModel(delay=42).build(netlist)
        )
        engine = GatspiEngine(netlist, annotation=other)
        engine.compile()
        assert not engine.compile_cache_hit

    def test_different_netlist_misses(self):
        netlist, annotation = _design(seed=1)
        GatspiEngine(netlist, annotation=annotation).compile()
        other_netlist, other_annotation = _design(seed=2)
        engine = GatspiEngine(other_netlist, annotation=other_annotation)
        engine.compile()
        assert not engine.compile_cache_hit

    def test_full_sdf_flag_is_part_of_the_key(self):
        netlist, annotation = _design()
        GatspiEngine(netlist, annotation=annotation).compile()
        engine = GatspiEngine(
            netlist, annotation=annotation, config=SimConfig(full_sdf=False)
        )
        engine.compile()
        assert not engine.compile_cache_hit

    def test_in_place_annotation_mutation_misses_on_recompile(self):
        netlist, annotation = _design()
        engine = GatspiEngine(netlist, annotation=annotation)
        engine.compile()
        name = next(iter(annotation.gate_tables))
        annotation.gate_tables[name] = annotation.gate_tables[name].averaged()
        engine.compile()
        assert not engine.compile_cache_hit

    def test_capacity_is_configurable_and_bounds_entries(self):
        from repro.core import set_compile_cache_capacity
        from repro.core.compile_cache import COMPILE_CACHE_CAPACITY

        try:
            set_compile_cache_capacity(1)
            for seed in (1, 2, 3):
                netlist, annotation = _design(seed=seed)
                GatspiEngine(netlist, annotation=annotation).compile()
            assert cache_info()["size"] == 1
            set_compile_cache_capacity(0)
            assert cache_info()["size"] == 0
            netlist, annotation = _design(seed=4)
            GatspiEngine(netlist, annotation=annotation).compile()
            assert cache_info()["size"] == 0
            with pytest.raises(ValueError):
                set_compile_cache_capacity(-1)
        finally:
            set_compile_cache_capacity(COMPILE_CACHE_CAPACITY)

    def test_disabled_cache_never_stores(self):
        netlist, annotation = _design()
        config = SimConfig(compile_cache=False)
        GatspiEngine(netlist, annotation=annotation, config=config).compile()
        engine = GatspiEngine(netlist, annotation=annotation, config=config)
        engine.compile()
        assert not engine.compile_cache_hit
        assert cache_info()["size"] == 0

    def test_recompile_still_clears_stale_gate_inputs(self):
        """The cached mapping is copied per compile, so engine-local
        mutations (the PR 1 regression scenario) never leak back."""
        netlist, annotation = _design()
        engine = GatspiEngine(netlist, annotation=annotation)
        engine.compile()
        expected = set(engine._gate_inputs)
        engine._gate_inputs["stale_gate"] = engine._gate_inputs[
            next(iter(expected))
        ]
        engine.compile()
        assert engine.compile_cache_hit
        assert "stale_gate" not in engine._gate_inputs
        assert set(engine._gate_inputs) == expected
