"""Tests for the process-wide compiled-design cache.

Repeated sessions over the same (netlist, annotation, config) triple must
reuse the packed design tensors; any change to the inputs the compile
consumes — netlist structure, delay tables, the ``full_sdf`` ablation, the
device — must miss.  Fingerprints are content-based, so structurally
identical copies (``deepcopy``) share a compile, and results stay
bit-identical whether they came from the cache or a fresh build.
"""

from __future__ import annotations

import copy
import sys
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import get_backend
from repro.core import SimConfig, cache_info, clear_compile_cache
from repro.core.engine import GatspiEngine
from repro.sdf import SyntheticDelayModel, UnitDelayModel, annotation_from_design_delays
from repro.testing import build_random_netlist, build_random_stimulus


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def _design(seed=0):
    netlist = build_random_netlist(num_inputs=5, num_gates=20, seed=seed)
    delays = SyntheticDelayModel(seed=seed).build(netlist)
    return netlist, annotation_from_design_delays(netlist, delays)


class TestCacheReuse:
    def test_second_compile_reuses_packed_tensors(self):
        netlist, annotation = _design()
        first = GatspiEngine(netlist, annotation=annotation)
        first.compile()
        assert not first.compile_cache_hit
        second = GatspiEngine(netlist, annotation=annotation)
        second.compile()
        assert second.compile_cache_hit
        assert second.packed_design is first.packed_design
        assert second.compiled is first.compiled
        info = cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1

    def test_deepcopy_shares_a_compile(self):
        netlist, annotation = _design()
        GatspiEngine(netlist, annotation=annotation).compile()
        clone = GatspiEngine(
            copy.deepcopy(netlist), annotation=copy.deepcopy(annotation)
        )
        clone.compile()
        assert clone.compile_cache_hit

    def test_prepare_sessions_share_a_compile(self):
        netlist, annotation = _design()
        backend = get_backend("gatspi")
        a = backend.prepare(netlist, annotation=annotation)
        b = backend.prepare(netlist, annotation=annotation)
        assert b.engine.compile_cache_hit
        assert a.engine.packed_design is b.engine.packed_design

    def test_cached_results_bit_identical(self):
        netlist, annotation = _design(seed=3)
        stimulus = build_random_stimulus(netlist, 8_000, seed=7)
        backend = get_backend("gatspi")
        fresh = backend.prepare(netlist, annotation=annotation).run(
            stimulus, duration=8_000
        )
        cached = backend.prepare(netlist, annotation=annotation).run(
            stimulus, duration=8_000
        )
        assert fresh.toggle_counts == cached.toggle_counts
        for net in fresh.waveforms:
            assert fresh.waveforms[net] == cached.waveforms[net]


class TestCacheInvalidation:
    def test_different_annotation_misses(self):
        netlist, annotation = _design()
        GatspiEngine(netlist, annotation=annotation).compile()
        other = annotation_from_design_delays(
            netlist, UnitDelayModel(delay=42).build(netlist)
        )
        engine = GatspiEngine(netlist, annotation=other)
        engine.compile()
        assert not engine.compile_cache_hit

    def test_different_netlist_misses(self):
        netlist, annotation = _design(seed=1)
        GatspiEngine(netlist, annotation=annotation).compile()
        other_netlist, other_annotation = _design(seed=2)
        engine = GatspiEngine(other_netlist, annotation=other_annotation)
        engine.compile()
        assert not engine.compile_cache_hit

    def test_full_sdf_flag_is_part_of_the_key(self):
        netlist, annotation = _design()
        GatspiEngine(netlist, annotation=annotation).compile()
        engine = GatspiEngine(
            netlist, annotation=annotation, config=SimConfig(full_sdf=False)
        )
        engine.compile()
        assert not engine.compile_cache_hit

    def test_in_place_annotation_mutation_misses_on_recompile(self):
        netlist, annotation = _design()
        engine = GatspiEngine(netlist, annotation=annotation)
        engine.compile()
        name = next(iter(annotation.gate_tables))
        annotation.gate_tables[name] = annotation.gate_tables[name].averaged()
        engine.compile()
        assert not engine.compile_cache_hit

    def test_capacity_is_configurable_and_bounds_entries(self):
        from repro.core import set_compile_cache_capacity
        from repro.core.compile_cache import COMPILE_CACHE_CAPACITY

        try:
            set_compile_cache_capacity(1)
            for seed in (1, 2, 3):
                netlist, annotation = _design(seed=seed)
                GatspiEngine(netlist, annotation=annotation).compile()
            assert cache_info()["size"] == 1
            set_compile_cache_capacity(0)
            assert cache_info()["size"] == 0
            netlist, annotation = _design(seed=4)
            GatspiEngine(netlist, annotation=annotation).compile()
            assert cache_info()["size"] == 0
            with pytest.raises(ValueError):
                set_compile_cache_capacity(-1)
        finally:
            set_compile_cache_capacity(COMPILE_CACHE_CAPACITY)

    def test_disabled_cache_never_stores(self):
        netlist, annotation = _design()
        config = SimConfig(compile_cache=False)
        GatspiEngine(netlist, annotation=annotation, config=config).compile()
        engine = GatspiEngine(netlist, annotation=annotation, config=config)
        engine.compile()
        assert not engine.compile_cache_hit
        assert cache_info()["size"] == 0

    def test_store_respects_capacity_after_concurrent_shrink(self):
        from repro.core import set_compile_cache_capacity
        from repro.core.compile_cache import COMPILE_CACHE_CAPACITY

        try:
            set_compile_cache_capacity(2)
            for seed in (1, 2):
                netlist, annotation = _design(seed=seed)
                GatspiEngine(netlist, annotation=annotation).compile()
            set_compile_cache_capacity(1)
            assert cache_info()["size"] == 1
        finally:
            set_compile_cache_capacity(COMPILE_CACHE_CAPACITY)

    def test_recompile_still_clears_stale_gate_inputs(self):
        """The cached mapping is copied per compile, so engine-local
        mutations (the PR 1 regression scenario) never leak back."""
        netlist, annotation = _design()
        engine = GatspiEngine(netlist, annotation=annotation)
        engine.compile()
        expected = set(engine._gate_inputs)
        engine._gate_inputs["stale_gate"] = engine._gate_inputs[
            next(iter(expected))
        ]
        engine.compile()
        assert engine.compile_cache_hit
        assert "stale_gate" not in engine._gate_inputs
        assert set(engine._gate_inputs) == expected


@pytest.mark.concurrency
class TestCacheConcurrency:
    """Regressions for the unlocked module-global cache.

    Before the cache operations were serialized under ``_LOCK``,
    concurrent ``prepare()`` calls raced on the ``OrderedDict``
    (``move_to_end`` / insertion / the eviction loop): the LRU could
    corrupt, ``popitem`` could double-evict into a ``KeyError``, and the
    hit/miss counters could lose updates.  These tests hammer exactly
    those paths from a ``ThreadPoolExecutor``; they are probabilistic by
    nature, so they maximize interleavings with a tiny switch interval
    and a capacity small enough that every store evicts.
    """

    @pytest.fixture(autouse=True)
    def tight_switch_interval(self):
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        yield
        sys.setswitchinterval(old)

    def test_concurrent_prepare_hammer(self):
        """Many threads preparing overlapping designs under eviction."""
        from repro.api import get_backend
        from repro.core import set_compile_cache_capacity
        from repro.core.compile_cache import COMPILE_CACHE_CAPACITY

        designs = [_design(seed=seed) for seed in range(6)]
        backend = get_backend("gatspi")
        attempts = 48

        def prepare_one(index: int):
            netlist, annotation = designs[index % len(designs)]
            session = backend.prepare(netlist, annotation=annotation)
            return session.engine.packed_design is not None

        try:
            # Capacity below the design count: every miss evicts, so the
            # store/evict path races against lookups and other stores.
            set_compile_cache_capacity(3)
            with ThreadPoolExecutor(max_workers=8) as pool:
                assert all(pool.map(prepare_one, range(attempts)))
            info = cache_info()
            assert info["size"] <= 3
            # Every prepare consulted the cache exactly once; a lost
            # counter update means the mutation raced.
            assert info["hits"] + info["misses"] == attempts
        finally:
            set_compile_cache_capacity(COMPILE_CACHE_CAPACITY)

    def test_cache_primitive_ops_race_free(self):
        """Direct lookup/store hammer on the cache primitives.

        Two keys against capacity 1 makes every store an eviction, so the
        unlocked code's ``get``/``move_to_end`` window raises ``KeyError``
        when the looked-up entry is evicted mid-refresh, and the unlocked
        ``_HITS``/``_MISSES`` increments lose a measurable fraction of
        their updates (~5% at this contention on CPython 3.11).  With the
        lock both failure modes vanish: no exceptions, and the counters
        exactly conserve the number of lookups.
        """
        import sys as _sys

        from repro.core import compile_cache as cc
        from repro.core import set_compile_cache_capacity
        from repro.core.compile_cache import COMPILE_CACHE_CAPACITY

        sentinel = cc.CompiledArtifacts(
            compiled=None,
            gate_inputs={},
            packed=None,
            readback_net_ids=None,
            source_net_ids=None,
            estimated_path_delay=0,
        )
        keys = ("design-a", "design-b")
        lookups_per_worker = 40_000
        workers = 6
        old_interval = _sys.getswitchinterval()

        def worker(worker_index: int) -> int:
            for step in range(lookups_per_worker):
                key = keys[(worker_index + step) % 2]
                if cc.lookup(key) is None:
                    cc.store(key, sentinel)
            return lookups_per_worker

        try:
            _sys.setswitchinterval(1e-6)
            set_compile_cache_capacity(1)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                # ``result()`` re-raises the unlocked code's KeyError.
                total_lookups = sum(
                    pool.map(worker, range(workers))
                )
            info = cache_info()
            assert info["size"] <= 1
            assert info["hits"] + info["misses"] == total_lookups, (
                f"hit/miss counters lost "
                f"{total_lookups - info['hits'] - info['misses']} updates "
                f"under concurrency"
            )
        finally:
            _sys.setswitchinterval(old_interval)
            set_compile_cache_capacity(COMPILE_CACHE_CAPACITY)
            cc.clear_compile_cache()

    def test_lru_refresh_is_atomic_with_eviction(self, monkeypatch):
        """Deterministic injection of the exact pre-fix interleaving.

        A lookup's LRU refresh is a dict read followed by
        ``move_to_end``; a concurrent store at capacity evicts the
        least-recently-used entry.  Unlocked, the eviction can land
        between the two halves of the refresh and ``move_to_end`` raises
        ``KeyError`` — the LRU-corruption crash.  The instrumented cache
        holds the window open on an event so the interleaving is forced
        every run: with the cache lock the store must wait for the whole
        refresh, so the lookup completes and returns the entry.
        """
        import threading
        from collections import OrderedDict

        from repro.core import compile_cache as cc
        from repro.core import set_compile_cache_capacity
        from repro.core.compile_cache import COMPILE_CACHE_CAPACITY

        in_window = threading.Event()
        proceed = threading.Event()

        class InstrumentedCache(OrderedDict):
            def get(self, key, default=None):
                value = super().get(key, default)
                if key == "a" and value is not None and not in_window.is_set():
                    in_window.set()
                    proceed.wait(timeout=0.5)
                return value

        monkeypatch.setattr(cc, "_CACHE", InstrumentedCache())
        sentinel = cc.CompiledArtifacts(
            compiled=None,
            gate_inputs={},
            packed=None,
            readback_net_ids=None,
            source_net_ids=None,
            estimated_path_delay=0,
        )
        outcome = {}

        def refresher():
            try:
                outcome["value"] = cc.lookup("a")
            except KeyError as exc:  # the pre-fix crash
                outcome["error"] = exc

        try:
            set_compile_cache_capacity(1)
            cc.store("a", sentinel)
            thread = threading.Thread(target=refresher)
            thread.start()
            assert in_window.wait(timeout=1.0), "lookup never reached the cache"
            # At capacity 1 this store evicts "a".  Unlocked it runs inside
            # the open refresh window; locked it blocks until the refresh
            # is done.
            cc.store("b", sentinel)
            proceed.set()
            thread.join(timeout=2.0)
            assert not thread.is_alive()
            assert "error" not in outcome, (
                f"LRU refresh raced the eviction: {outcome['error']!r}"
            )
            assert outcome["value"] is sentinel
        finally:
            proceed.set()
            set_compile_cache_capacity(COMPILE_CACHE_CAPACITY)

    def test_concurrent_capacity_churn_and_prepare(self):
        """Shrinking/growing capacity while other threads prepare.

        The eviction loop in ``set_compile_cache_capacity`` iterates
        ``popitem(last=False)``; racing it against concurrent stores used
        to double-evict (``KeyError``) or leave the cache over capacity.
        """
        from repro.api import get_backend
        from repro.core import set_compile_cache_capacity
        from repro.core.compile_cache import COMPILE_CACHE_CAPACITY

        designs = [_design(seed=seed) for seed in range(5)]
        backend = get_backend("gatspi")

        def prepare_loop(index: int):
            for _ in range(4):
                netlist, annotation = designs[index % len(designs)]
                backend.prepare(netlist, annotation=annotation)

        def churn_loop(_):
            for capacity in (1, 4, 2, 5, 1, 3):
                set_compile_cache_capacity(capacity)

        try:
            with ThreadPoolExecutor(max_workers=10) as pool:
                workers = [pool.submit(prepare_loop, i) for i in range(8)]
                churners = [pool.submit(churn_loop, i) for i in range(2)]
                for future in workers + churners:
                    future.result()
            # The last capacity set by a churner is 3.
            assert cache_info()["size"] <= 3
        finally:
            set_compile_cache_capacity(COMPILE_CACHE_CAPACITY)
