"""Shared fixtures for the test suite.

The random design/stimulus builders live in :mod:`repro.testing`; they are
re-exported here only for backwards compatibility of older helper imports.
Test modules should import them explicitly::

    from repro.testing import build_random_netlist, build_random_stimulus
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package and without the
# pyproject ``pythonpath`` setting (e.g. ``pytest`` invoked from elsewhere).
SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import NetlistBuilder  # noqa: E402
from repro.sdf import SyntheticDelayModel, UnitDelayModel, annotation_from_design_delays  # noqa: E402
from repro.testing import build_random_netlist, build_random_stimulus  # noqa: E402,F401


@pytest.fixture
def small_netlist():
    """A tiny hand-built netlist: NAND feeding INV and XOR."""
    builder = NetlistBuilder("small")
    a = builder.input("a")
    b = builder.input("b")
    n1 = builder.gate("NAND2", [a, b], name="u_nand")
    n2 = builder.gate("INV", [n1], name="u_inv")
    builder.output("y")
    builder.gate("XOR2", [n1, n2], output_net="y", name="u_xor")
    return builder.build()


@pytest.fixture
def small_annotation(small_netlist):
    return annotation_from_design_delays(
        small_netlist, UnitDelayModel(delay=10).build(small_netlist)
    )


@pytest.fixture
def random_netlist():
    return build_random_netlist(seed=7)


@pytest.fixture
def random_annotation(random_netlist):
    delays = SyntheticDelayModel(seed=7).build(random_netlist)
    return annotation_from_design_delays(random_netlist, delays)
