"""Shared fixtures for the test suite."""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package.
SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import NetlistBuilder, Waveform  # noqa: E402
from repro.sdf import SyntheticDelayModel, UnitDelayModel, annotation_from_design_delays  # noqa: E402


def build_random_netlist(num_inputs: int = 6, num_gates: int = 40, seed: int = 0):
    """A random combinational netlist used by equivalence tests."""
    rng = random.Random(seed)
    builder = NetlistBuilder(f"rand_{seed}")
    nets = [builder.input(f"i{k}") for k in range(num_inputs)]
    cells = [
        "INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2",
        "AOI21", "OAI21", "MUX2", "AOI22", "MAJ3", "NAND3", "OR3",
    ]
    library = builder.netlist.library
    for _ in range(num_gates):
        cell = rng.choice(cells)
        inputs = [rng.choice(nets) for _ in range(library.get(cell).num_inputs)]
        nets.append(builder.gate(cell, inputs))
    builder.output("out")
    builder.gate("BUF", [nets[-1]], output_net="out")
    return builder.build()


def build_random_stimulus(netlist, duration: int, seed: int = 0, min_gap: int = 30,
                          max_gap: int = 400):
    """Random toggles for every source net of ``netlist``."""
    rng = random.Random(seed)
    stimulus = {}
    for net in netlist.source_nets():
        time = 0
        toggles = []
        while True:
            time += rng.randint(min_gap, max_gap)
            if time >= duration:
                break
            toggles.append(time)
        stimulus[net] = Waveform.from_initial_and_toggles(rng.randint(0, 1), toggles)
    return stimulus


@pytest.fixture
def small_netlist():
    """A tiny hand-built netlist: NAND feeding INV and XOR."""
    builder = NetlistBuilder("small")
    a = builder.input("a")
    b = builder.input("b")
    n1 = builder.gate("NAND2", [a, b], name="u_nand")
    n2 = builder.gate("INV", [n1], name="u_inv")
    builder.output("y")
    builder.gate("XOR2", [n1, n2], output_net="y", name="u_xor")
    return builder.build()


@pytest.fixture
def small_annotation(small_netlist):
    return annotation_from_design_delays(
        small_netlist, UnitDelayModel(delay=10).build(small_netlist)
    )


@pytest.fixture
def random_netlist():
    return build_random_netlist(seed=7)


@pytest.fixture
def random_annotation(random_netlist):
    delays = SyntheticDelayModel(seed=7).build(random_netlist)
    return annotation_from_design_delays(random_netlist, delays)
