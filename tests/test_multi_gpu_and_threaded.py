"""Tests for multi-device distribution and the partitioned CPU baseline."""

import pytest

from repro.core import SimConfig, simulate_multi_gpu
from repro.reference import PartitionedCpuSimulator
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays

from repro.testing import build_random_netlist, build_random_stimulus

CYCLES = 8
CONFIG = SimConfig(clock_period=500, cycle_parallelism=4)


@pytest.fixture(scope="module")
def setup():
    netlist = build_random_netlist(num_gates=40, seed=31)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=31).build(netlist)
    )
    stimulus = build_random_stimulus(netlist, CYCLES * 500, seed=310)
    return netlist, annotation, stimulus


class TestMultiGpu:
    def test_toggle_counts_stable_across_device_counts(self, setup):
        """Distributing the testbench across devices preserves total activity.

        Each device slice is simulated independently, so events propagating
        across a slice boundary may be attributed to either side; the total
        toggle count must stay within a small boundary tolerance.
        """
        netlist, annotation, stimulus = setup
        single = simulate_multi_gpu(
            netlist, stimulus, CYCLES, num_devices=1,
            annotation=annotation, config=CONFIG,
        )
        quad = simulate_multi_gpu(
            netlist, stimulus, CYCLES, num_devices=4,
            annotation=annotation, config=CONFIG,
        )
        assert quad.num_devices == 4
        assert len(quad.shares) == 4
        total_single = single.total_toggles()
        total_quad = quad.total_toggles()
        assert abs(total_single - total_quad) <= max(10, 0.02 * total_single)

    def test_parallel_runtime_model(self, setup):
        netlist, annotation, stimulus = setup
        result = simulate_multi_gpu(
            netlist, stimulus, CYCLES, num_devices=4,
            annotation=annotation, config=CONFIG, launch_overhead=0.01,
        )
        assert result.parallel_kernel_runtime < result.serial_kernel_runtime + 0.01
        assert result.speedup_vs_single_device > 1.0
        assert result.load_imbalance() >= 1.0

    def test_invalid_device_count(self, setup):
        netlist, annotation, stimulus = setup
        with pytest.raises(ValueError):
            simulate_multi_gpu(netlist, stimulus, CYCLES, num_devices=0,
                               annotation=annotation, config=CONFIG)


class TestPartitionedCpu:
    def test_report_structure_and_speedup(self, setup):
        netlist, annotation, stimulus = setup
        simulator = PartitionedCpuSimulator(
            netlist, annotation=annotation, config=CONFIG, num_workers=8,
            barrier_overhead=0.0,
        )
        result, report = simulator.run(stimulus, cycles=CYCLES)
        assert result.total_toggles() > 0
        assert report.num_workers == 8
        assert len(report.per_level_worker_times) > 0
        assert all(len(times) == 8 for times in report.per_level_worker_times)
        assert report.parallel_kernel_time <= report.serial_kernel_time * 1.5
        assert report.load_imbalance() >= 1.0

    def test_worker_count_validated(self, setup):
        netlist, annotation, _ = setup
        with pytest.raises(ValueError):
            PartitionedCpuSimulator(netlist, annotation=annotation, num_workers=0)
