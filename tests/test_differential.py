"""Cross-backend differential harness over randomized netlists and stimuli.

Every test drives the same seeded-random workload through several engine
variants and checks they agree:

* ``gatspi`` (vector kernel + vector restructure pipeline, the default),
* ``gatspi:kernel=scalar`` (per-gate Python kernel oracle),
* ``gatspi:restructure=python`` (per-(net, window) pipeline oracle),
* ``event`` (the event-driven commercial-simulator stand-in).

Among gatspi variants the contract is **bit-identical waveforms**; against
the event-driven baseline it is the paper's SAIF accuracy criterion
(identical per-net toggle counts).  The stimuli target the seams the
vectorized restructure/load/readback pipeline must preserve: mixed gate
arities, events exactly on window boundaries, settle-overlap edge cases,
pool-overflow segment splits, and empty windows.
"""

from __future__ import annotations

import pytest

from repro.api import resolve_backend
from repro.core import SimConfig
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.testing import (
    build_boundary_stimulus,
    build_random_netlist,
    build_random_stimulus,
    build_sparse_stimulus,
)

DURATION = 24_000

#: The gatspi variants that must produce bit-identical waveforms.
GATSPI_SPECS = (
    "gatspi",
    "gatspi:kernel=scalar",
    "gatspi:restructure=python",
    "gatspi:kernel=scalar,restructure=python",
)


def _prepare_design(seed: int, num_inputs: int = 6, num_gates: int = 36):
    netlist = build_random_netlist(
        num_inputs=num_inputs, num_gates=num_gates, seed=seed
    )
    delays = SyntheticDelayModel(seed=seed).build(netlist)
    annotation = annotation_from_design_delays(netlist, delays)
    return netlist, annotation


def _run(spec: str, netlist, annotation, stimulus, config=None, duration=DURATION):
    backend, options = resolve_backend(spec)
    session = backend.prepare(
        netlist, annotation=annotation, config=config, **options
    )
    return session.run(stimulus, duration=duration)


def _assert_bit_identical(reference, candidate, context: str):
    assert reference.toggle_counts == candidate.toggle_counts, (
        f"{context}: toggle counts diverge on "
        f"{reference.differing_nets(candidate)}"
    )
    assert set(reference.waveforms) == set(candidate.waveforms), context
    for net in reference.waveforms:
        assert reference.waveforms[net] == candidate.waveforms[net], (
            f"{context}: waveform diverges on net {net!r}: "
            f"{reference.waveforms[net].to_list()[:12]} vs "
            f"{candidate.waveforms[net].to_list()[:12]}"
        )


@pytest.mark.parametrize("seed", range(6))
def test_gatspi_variants_bit_identical_random_designs(seed):
    """All four gatspi executor combinations agree bit-for-bit.

    Random designs draw from the full arity mix (1- to 4-input cells) and
    random stimuli cover generic event spacing.
    """
    netlist, annotation = _prepare_design(seed)
    stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 50)
    results = {
        spec: _run(spec, netlist, annotation, stimulus) for spec in GATSPI_SPECS
    }
    reference = results["gatspi:kernel=scalar,restructure=python"]
    for spec in GATSPI_SPECS[:-1]:
        _assert_bit_identical(reference, results[spec], f"seed={seed} {spec}")


@pytest.mark.parametrize("seed", range(4))
def test_gatspi_matches_event_baseline_toggle_counts(seed):
    """The SAIF criterion against the independent event-driven oracle."""
    netlist, annotation = _prepare_design(seed, num_gates=28)
    stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 9)
    gatspi = _run("gatspi", netlist, annotation, stimulus)
    event = _run("event", netlist, annotation, stimulus)
    assert gatspi.matches_toggle_counts(event), gatspi.differing_nets(event)


@pytest.mark.parametrize("seed", range(4))
def test_window_boundary_events(seed):
    """Toggles exactly on/±1 around every window boundary.

    cycle_parallelism=8 over DURATION gives a 3000-unit window; the
    boundary stimulus places events at ``k*3000 - 1``, ``k*3000``, and
    ``k*3000 + 1``, the strict/inclusive edges of slicing and trimming.
    """
    netlist, annotation = _prepare_design(seed, num_gates=30)
    config = SimConfig(cycle_parallelism=8)
    window_length = -(-DURATION // config.cycle_parallelism)
    stimulus = build_boundary_stimulus(
        netlist, DURATION, window_length, seed=seed
    )
    results = {
        spec: _run(spec, netlist, annotation, stimulus, config=config)
        for spec in GATSPI_SPECS
    }
    reference = results["gatspi:kernel=scalar,restructure=python"]
    for spec in GATSPI_SPECS[:-1]:
        _assert_bit_identical(reference, results[spec], f"boundary seed={seed} {spec}")
    # The event-driven baseline is deliberately not consulted here: with
    # many nets toggling at the same timestamp (the point of this
    # stimulus), the two-pass kernel and the event queue resolve
    # simultaneous arrivals differently — a pre-existing engine-vs-event
    # difference independent of windowing (it reproduces at
    # cycle_parallelism=1) and of the restructure pipeline under test.


@pytest.mark.parametrize("overlap", [None, 0, 1, 7, 5000])
def test_settle_overlap_edge_cases(overlap):
    """Window overlap from disabled (0) through tiny to larger-than-window.

    ``overlap=0`` keeps every propagation tail (the stitch seam rules do
    the dedup); a tiny overlap exercises partial settle margins; a margin
    larger than the window length clamps at the run start.  The two
    restructure pipelines must agree bit-for-bit in every regime.
    """
    netlist, annotation = _prepare_design(3)
    stimulus = build_random_stimulus(netlist, DURATION, seed=17)
    config = SimConfig(cycle_parallelism=8, window_overlap=overlap)
    vector = _run("gatspi", netlist, annotation, stimulus, config=config)
    python = _run(
        "gatspi:restructure=python", netlist, annotation, stimulus, config=config
    )
    _assert_bit_identical(python, vector, f"overlap={overlap}")


@pytest.mark.parametrize("seed", range(3))
def test_pool_overflow_segment_splits(seed):
    """A pool too small for the full run forces sequential segments.

    The segment queue re-batches windows; both pipelines must keep the
    same segment count and stay bit-identical across the splits.
    """
    netlist, annotation = _prepare_design(seed, num_gates=24)
    stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 5)
    config = SimConfig(cycle_parallelism=16, device_memory_gb=2e-5)
    vector = _run("gatspi", netlist, annotation, stimulus, config=config)
    python = _run(
        "gatspi:restructure=python", netlist, annotation, stimulus, config=config
    )
    assert vector.stats.segments > 1, "workload must actually split"
    assert vector.stats.segments == python.stats.segments
    _assert_bit_identical(python, vector, f"segments seed={seed}")


@pytest.mark.parametrize("seed", range(3))
def test_empty_windows_and_constant_nets(seed):
    """Most windows carry no events; a third of the nets never toggle."""
    netlist, annotation = _prepare_design(seed, num_gates=30)
    stimulus = build_sparse_stimulus(netlist, DURATION, seed=seed)
    results = {
        spec: _run(spec, netlist, annotation, stimulus) for spec in GATSPI_SPECS
    }
    reference = results["gatspi:kernel=scalar,restructure=python"]
    for spec in GATSPI_SPECS[:-1]:
        _assert_bit_identical(reference, results[spec], f"sparse seed={seed} {spec}")
    event = _run("event", netlist, annotation, stimulus)
    assert results["gatspi"].matches_toggle_counts(event)


@pytest.mark.parametrize("bounds", [(0, 6_000), (5_999, 6_001), (3_000, DURATION)])
def test_slice_stimulus_matches_reference_windowing(bounds):
    """The multi-device share slicer equals per-net ``Waveform.window``."""
    from repro.core import slice_stimulus

    netlist, _ = _prepare_design(5)
    window_length = -(-DURATION // 8)
    start, end = bounds
    for stimulus in (
        build_random_stimulus(netlist, DURATION, seed=23),
        build_boundary_stimulus(netlist, DURATION, window_length, seed=24),
    ):
        sliced = slice_stimulus(stimulus, start, end)
        for net, wave in stimulus.items():
            assert sliced[net] == wave.window(start, end, rebase=True), net


def test_duration_beyond_eow_sentinel():
    """Runs longer than the EOW sentinel value stay bit-identical.

    Absolute window starts/ends then exceed ``EOW`` even though every
    event time stays below it (the engine only bounds *window-local*
    times).  The segmented-searchsorted shift stride must cover those
    absolute bounds — with a fixed ``EOW`` stride, queries escaped their
    segment's band and sliced one net's events into another (regression).
    """
    from repro.core import EOW

    netlist, annotation = _prepare_design(2, num_gates=20)
    stimulus = build_random_stimulus(netlist, 20_000, seed=8)
    duration = 3 * EOW
    config = SimConfig(cycle_parallelism=8)
    vector = _run(
        "gatspi", netlist, annotation, stimulus, config=config, duration=duration
    )
    python = _run(
        "gatspi:restructure=python",
        netlist, annotation, stimulus, config=config, duration=duration,
    )
    _assert_bit_identical(python, vector, "duration beyond EOW")


def test_differential_without_stored_waveforms():
    """Toggle-count-only mode sums trimmed per-window counts identically."""
    netlist, annotation = _prepare_design(11)
    stimulus = build_random_stimulus(netlist, DURATION, seed=42)
    config = SimConfig(store_waveforms=False, cycle_parallelism=8)
    vector = _run("gatspi", netlist, annotation, stimulus, config=config)
    python = _run(
        "gatspi:restructure=python", netlist, annotation, stimulus, config=config
    )
    assert not vector.waveforms and not python.waveforms
    assert vector.toggle_counts == python.toggle_counts
