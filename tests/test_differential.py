"""Cross-backend differential harness over randomized netlists and stimuli.

Every test drives the same seeded-random workload through several engine
variants and checks they agree:

* ``gatspi`` (vector kernel + vector restructure pipeline, the default),
* ``gatspi:kernel=scalar`` (per-gate Python kernel oracle),
* ``gatspi:restructure=python`` (per-(net, window) pipeline oracle),
* ``event`` (the event-driven commercial-simulator stand-in).

Among gatspi variants the contract is **bit-identical waveforms**; against
the event-driven baseline it is the paper's SAIF accuracy criterion
(identical per-net toggle counts).  The stimuli target the seams the
vectorized restructure/load/readback pipeline must preserve: mixed gate
arities, events exactly on window boundaries, settle-overlap edge cases,
pool-overflow segment splits, and empty windows.

The suite is additionally parametrized over every available array backend
(:mod:`repro.core.xp`): the all-vector pipeline executes on the
parametrized device while the scalar/python oracle variants pin numpy
(see ``SimConfig.effective_device``), so each device's data plane is held
bit-identical to the host oracles.  With only numpy installed the device
axis has one value; installing torch/cupy widens it automatically.
"""

from __future__ import annotations

import pytest

from repro.api import resolve_backend
from repro.core import SimConfig
from repro.core.xp import available_array_backends
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.testing import (
    build_boundary_stimulus,
    build_random_netlist,
    build_random_stimulus,
    build_sparse_stimulus,
)

DURATION = 24_000

#: The gatspi variants that must produce bit-identical waveforms.
GATSPI_SPECS = (
    "gatspi",
    "gatspi:kernel=scalar",
    "gatspi:restructure=python",
    "gatspi:kernel=scalar,restructure=python",
)

#: Array backends the vector pipeline is exercised on (numpy always;
#: torch/cupy auto-included when importable).
DEVICES = available_array_backends()


def _prepare_design(seed: int, num_inputs: int = 6, num_gates: int = 36):
    netlist = build_random_netlist(
        num_inputs=num_inputs, num_gates=num_gates, seed=seed
    )
    delays = SyntheticDelayModel(seed=seed).build(netlist)
    annotation = annotation_from_design_delays(netlist, delays)
    return netlist, annotation


def _run(
    spec: str,
    netlist,
    annotation,
    stimulus,
    config=None,
    duration=DURATION,
    device=None,
):
    backend, options = resolve_backend(spec)
    if device is not None and spec.startswith("gatspi"):
        config = (config or SimConfig()).with_updates(device=device)
    session = backend.prepare(
        netlist, annotation=annotation, config=config, **options
    )
    return session.run(stimulus, duration=duration)


def _variant_results(netlist, annotation, stimulus, device, config=None):
    """(reference, {spec: result}) for one device value.

    On ``numpy`` this is the full oracle comparison: every executor spec
    against the scalar+python reference.  On other devices only the
    all-vector pipeline actually varies (the oracle specs pin numpy via
    ``effective_device``), so re-running them would duplicate the numpy
    leg's work for byte-identical results; instead the device pipeline is
    held to the numpy vector pipeline — which the numpy leg has already
    proven bit-identical to the oracles.
    """
    if device == "numpy":
        results = {
            spec: _run(spec, netlist, annotation, stimulus, config=config,
                       device=device)
            for spec in GATSPI_SPECS
        }
        reference = results.pop("gatspi:kernel=scalar,restructure=python")
        return reference, results
    reference = _run("gatspi", netlist, annotation, stimulus, config=config,
                     device="numpy")
    candidate = _run("gatspi", netlist, annotation, stimulus, config=config,
                     device=device)
    return reference, {f"gatspi:device={device}": candidate}


def _oracle_pair(
    netlist, annotation, stimulus, device, config=None, duration=DURATION
):
    """(reference, vector-candidate) for pairwise pipeline comparisons.

    numpy compares the vector pipeline against the python restructure
    oracle; other devices compare against the numpy vector pipeline (see
    :func:`_variant_results` for why).
    """
    candidate = _run(
        "gatspi", netlist, annotation, stimulus, config=config,
        duration=duration, device=device,
    )
    reference_spec = "gatspi:restructure=python" if device == "numpy" else "gatspi"
    reference = _run(
        reference_spec, netlist, annotation, stimulus, config=config,
        duration=duration, device="numpy",
    )
    return reference, candidate


def _assert_bit_identical(reference, candidate, context: str):
    assert reference.toggle_counts == candidate.toggle_counts, (
        f"{context}: toggle counts diverge on "
        f"{reference.differing_nets(candidate)}"
    )
    assert set(reference.waveforms) == set(candidate.waveforms), context
    for net in reference.waveforms:
        assert reference.waveforms[net] == candidate.waveforms[net], (
            f"{context}: waveform diverges on net {net!r}: "
            f"{reference.waveforms[net].to_list()[:12]} vs "
            f"{candidate.waveforms[net].to_list()[:12]}"
        )


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("seed", range(6))
def test_gatspi_variants_bit_identical_random_designs(seed, device):
    """All four gatspi executor combinations agree bit-for-bit.

    Random designs draw from the full arity mix (1- to 4-input cells) and
    random stimuli cover generic event spacing.  The vector variants run
    on ``device``; the oracle variants pin numpy.
    """
    netlist, annotation = _prepare_design(seed)
    stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 50)
    reference, results = _variant_results(netlist, annotation, stimulus, device)
    candidate = results.get("gatspi", next(iter(results.values())))
    assert candidate.stats.device == device
    for spec, result in results.items():
        _assert_bit_identical(reference, result, f"seed={seed} {spec}")


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("seed", range(3))
def test_single_pass_kernel_bit_identical(seed, device):
    """``two_pass=False`` (fused count/store schedule) is on-spec.

    The single-pass kernel must match the scalar+python oracle — which
    always runs the default two-pass schedule on numpy — bit-for-bit,
    at half the kernel invocations of the two-pass default.
    """
    netlist, annotation = _prepare_design(seed, num_gates=30)
    stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 31)
    single = _run(
        "gatspi", netlist, annotation, stimulus,
        config=SimConfig(two_pass=False), device=device,
    )
    reference = _run(
        "gatspi:kernel=scalar,restructure=python", netlist, annotation, stimulus
    )
    _assert_bit_identical(reference, single, f"two_pass=False seed={seed}")
    default = _run("gatspi", netlist, annotation, stimulus, device=device)
    assert default.stats.kernel_invocations == 2 * single.stats.kernel_invocations


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("seed", range(4))
def test_gatspi_matches_event_baseline_toggle_counts(seed, device):
    """The SAIF criterion against the independent event-driven oracle."""
    netlist, annotation = _prepare_design(seed, num_gates=28)
    stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 9)
    gatspi = _run("gatspi", netlist, annotation, stimulus, device=device)
    event = _run("event", netlist, annotation, stimulus)
    assert gatspi.matches_toggle_counts(event), gatspi.differing_nets(event)


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("seed", range(4))
def test_window_boundary_events(seed, device):
    """Toggles exactly on/±1 around every window boundary.

    cycle_parallelism=8 over DURATION gives a 3000-unit window; the
    boundary stimulus places events at ``k*3000 - 1``, ``k*3000``, and
    ``k*3000 + 1``, the strict/inclusive edges of slicing and trimming.
    """
    netlist, annotation = _prepare_design(seed, num_gates=30)
    config = SimConfig(cycle_parallelism=8)
    window_length = -(-DURATION // config.cycle_parallelism)
    stimulus = build_boundary_stimulus(
        netlist, DURATION, window_length, seed=seed
    )
    reference, results = _variant_results(
        netlist, annotation, stimulus, device, config=config
    )
    for spec, result in results.items():
        _assert_bit_identical(reference, result, f"boundary seed={seed} {spec}")
    # The event-driven baseline is deliberately not consulted here: with
    # many nets toggling at the same timestamp (the point of this
    # stimulus), the two-pass kernel and the event queue resolve
    # simultaneous arrivals differently — a pre-existing engine-vs-event
    # difference independent of windowing (it reproduces at
    # cycle_parallelism=1) and of the restructure pipeline under test.


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("overlap", [None, 0, 1, 7, 5000])
def test_settle_overlap_edge_cases(overlap, device):
    """Window overlap from disabled (0) through tiny to larger-than-window.

    ``overlap=0`` keeps every propagation tail (the stitch seam rules do
    the dedup); a tiny overlap exercises partial settle margins; a margin
    larger than the window length clamps at the run start.  The two
    restructure pipelines must agree bit-for-bit in every regime.
    """
    netlist, annotation = _prepare_design(3)
    stimulus = build_random_stimulus(netlist, DURATION, seed=17)
    config = SimConfig(cycle_parallelism=8, window_overlap=overlap)
    reference, vector = _oracle_pair(netlist, annotation, stimulus, device, config=config)
    _assert_bit_identical(reference, vector, f"overlap={overlap}")


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("seed", range(3))
def test_pool_overflow_segment_splits(seed, device):
    """A pool too small for the full run forces sequential segments.

    The segment queue re-batches windows; both pipelines must keep the
    same segment count and stay bit-identical across the splits.
    """
    netlist, annotation = _prepare_design(seed, num_gates=24)
    stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 5)
    config = SimConfig(cycle_parallelism=16, device_memory_gb=2e-5)
    reference, vector = _oracle_pair(netlist, annotation, stimulus, device, config=config)
    assert vector.stats.segments > 1, "workload must actually split"
    assert vector.stats.segments == reference.stats.segments
    _assert_bit_identical(reference, vector, f"segments seed={seed}")


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("seed", range(3))
def test_empty_windows_and_constant_nets(seed, device):
    """Most windows carry no events; a third of the nets never toggle."""
    netlist, annotation = _prepare_design(seed, num_gates=30)
    stimulus = build_sparse_stimulus(netlist, DURATION, seed=seed)
    reference, results = _variant_results(netlist, annotation, stimulus, device)
    for spec, result in results.items():
        _assert_bit_identical(reference, result, f"sparse seed={seed} {spec}")
    event = _run("event", netlist, annotation, stimulus)
    assert reference.matches_toggle_counts(event)


@pytest.mark.parametrize("bounds", [(0, 6_000), (5_999, 6_001), (3_000, DURATION)])
def test_slice_stimulus_matches_reference_windowing(bounds):
    """The multi-device share slicer equals per-net ``Waveform.window``."""
    from repro.core import slice_stimulus

    netlist, _ = _prepare_design(5)
    window_length = -(-DURATION // 8)
    start, end = bounds
    for stimulus in (
        build_random_stimulus(netlist, DURATION, seed=23),
        build_boundary_stimulus(netlist, DURATION, window_length, seed=24),
    ):
        sliced = slice_stimulus(stimulus, start, end)
        for net, wave in stimulus.items():
            assert sliced[net] == wave.window(start, end, rebase=True), net


@pytest.mark.parametrize("device", DEVICES)
def test_duration_beyond_eow_sentinel(device):
    """Runs longer than the EOW sentinel value stay bit-identical.

    Absolute window starts/ends then exceed ``EOW`` even though every
    event time stays below it (the engine only bounds *window-local*
    times).  The segmented-searchsorted shift stride must cover those
    absolute bounds — with a fixed ``EOW`` stride, queries escaped their
    segment's band and sliced one net's events into another (regression).
    """
    from repro.core import EOW

    netlist, annotation = _prepare_design(2, num_gates=20)
    stimulus = build_random_stimulus(netlist, 20_000, seed=8)
    duration = 3 * EOW
    config = SimConfig(cycle_parallelism=8)
    reference, vector = _oracle_pair(
        netlist, annotation, stimulus, device, config=config, duration=duration
    )
    _assert_bit_identical(reference, vector, "duration beyond EOW")


@pytest.mark.parametrize("device", DEVICES)
def test_differential_without_stored_waveforms(device):
    """Toggle-count-only mode sums trimmed per-window counts identically."""
    netlist, annotation = _prepare_design(11)
    stimulus = build_random_stimulus(netlist, DURATION, seed=42)
    config = SimConfig(store_waveforms=False, cycle_parallelism=8)
    reference, vector = _oracle_pair(netlist, annotation, stimulus, device, config=config)
    assert not vector.waveforms and not reference.waveforms
    assert vector.toggle_counts == reference.toggle_counts


# ----------------------------------------------------------------------
# The window-axis sharded backend vs the single-session pipeline
# ----------------------------------------------------------------------
#: Shard counts the sharded backend is held bit-identical at.
SHARD_COUNTS = (1, 2, 4)


def _sharded_pair(netlist, annotation, stimulus, shards, config=None,
                  duration=DURATION):
    # ``workers`` is pinned so the requested partition count is exercised
    # for real on any machine (the adaptive default narrows to the
    # available cores, down to a single-session passthrough).
    reference = _run(
        "gatspi", netlist, annotation, stimulus, config=config,
        duration=duration,
    )
    candidate = _run(
        f"gatspi-sharded:shards={shards},workers={shards}",
        netlist, annotation, stimulus, config=config, duration=duration,
    )
    return reference, candidate


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("seed", range(3))
def test_sharded_backend_bit_identical_random_designs(seed, shards):
    """``gatspi-sharded`` merges shares back to the single-session result.

    Shares are margin-extended, trimmed, and stitched through the
    engine's own seam rules, so toggle counts *and* waveforms must be
    bit-identical at every shard count on the random-stimulus zoo.
    """
    netlist, annotation = _prepare_design(seed)
    stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 70)
    reference, candidate = _sharded_pair(netlist, annotation, stimulus, shards)
    assert candidate.stats.shards == shards
    _assert_bit_identical(
        reference, candidate, f"sharded seed={seed} shards={shards}"
    )


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_backend_boundary_events(shards):
    """Events on/±1 around shard *and* window boundaries stay exact."""
    netlist, annotation = _prepare_design(4, num_gates=30)
    config = SimConfig(cycle_parallelism=8)
    window_length = -(-DURATION // config.cycle_parallelism)
    stimulus = build_boundary_stimulus(netlist, DURATION, window_length, seed=3)
    reference, candidate = _sharded_pair(
        netlist, annotation, stimulus, shards, config=config
    )
    _assert_bit_identical(reference, candidate, f"sharded boundary shards={shards}")


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_backend_sparse_and_constant_nets(shards):
    """Empty shards and constant nets merge exactly."""
    netlist, annotation = _prepare_design(6, num_gates=30)
    stimulus = build_sparse_stimulus(netlist, DURATION, seed=6)
    reference, candidate = _sharded_pair(netlist, annotation, stimulus, shards)
    _assert_bit_identical(reference, candidate, f"sharded sparse shards={shards}")


@pytest.mark.parametrize("shards", (2, 4))
def test_sharded_backend_segment_splits(shards):
    """Pool overflow inside a share splits segments without divergence."""
    netlist, annotation = _prepare_design(1, num_gates=24)
    stimulus = build_random_stimulus(netlist, DURATION, seed=6)
    config = SimConfig(cycle_parallelism=16, device_memory_gb=2e-5)
    reference, candidate = _sharded_pair(
        netlist, annotation, stimulus, shards, config=config
    )
    assert candidate.stats.segments >= shards
    _assert_bit_identical(reference, candidate, f"sharded segments shards={shards}")


def test_sharded_backend_without_stored_waveforms():
    """Counts-only mode merges through exact share stitching.

    The sharded backend always stitches internally (exact merging needs
    the share waveforms), so its counts-only results equal the
    *waveform-mode* counts — seam toggles counted exactly once — rather
    than the engine's counts-only shortcut of summing per-window trimmed
    counts (which the engine documents as seam-approximate).
    """
    netlist, annotation = _prepare_design(11)
    stimulus = build_random_stimulus(netlist, DURATION, seed=42)
    config = SimConfig(store_waveforms=False, cycle_parallelism=8)
    exact = _run(
        "gatspi", netlist, annotation, stimulus,
        config=config.with_updates(store_waveforms=True),
    )
    candidate = _run(
        "gatspi-sharded:shards=4,workers=4", netlist, annotation, stimulus,
        config=config,
    )
    assert not candidate.waveforms
    assert candidate.toggle_counts == exact.toggle_counts


# ----------------------------------------------------------------------
# Batched-run fusion (run_many) vs standalone runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", [
    "gatspi-sharded:shards=1",            # single-session passthrough
    "gatspi-sharded:shards=2,workers=2",  # fused run, then 2-way sharded
])
def test_run_many_fusion_bit_identical_to_standalone(spec):
    """A fused batch slices apart into the standalone per-request results.

    Requests of different durations and initial values are laid out on
    one time axis with settle pads; every toggle count and waveform —
    including each request's propagation tail — must equal the
    single-request runs bit for bit.
    """
    from repro.api import RunSpec

    netlist, annotation = _prepare_design(7)
    batch = [
        (build_random_stimulus(netlist, DURATION, seed=31), DURATION),
        (build_sparse_stimulus(netlist, 16_000, seed=32), 16_000),
        (build_random_stimulus(netlist, 20_000, seed=33), 20_000),
    ]
    backend, options = resolve_backend(spec)
    session = backend.prepare(netlist, annotation=annotation, **options)
    fused = session.run_many(
        [RunSpec(stimulus=s, duration=d) for s, d in batch]
    )
    assert [r.stats.fused_requests for r in fused] == [3, 3, 3]
    single = resolve_backend("gatspi")[0].prepare(netlist, annotation=annotation)
    for index, (stimulus, duration) in enumerate(batch):
        reference = single.run(stimulus, duration=duration)
        _assert_bit_identical(
            reference, fused[index], f"{spec} fused request {index}"
        )
    assert session.runs_completed == len(batch)


def test_run_many_fusion_clips_stimuli_longer_than_their_horizon():
    """A reused long stimulus fuses exactly under shorter horizons.

    Standalone runs simply never load toggles at or past the duration;
    the fused layout must clip the same way — unclipped, a request's
    tail toggles would spill into the settle pad (silently breaking
    bit-identity) or past the next request's offset entirely (raising
    from the waveform constructor).  Regression for both.
    """
    from repro.api import RunSpec

    netlist, annotation = _prepare_design(9, num_gates=24)
    long_stimulus = build_random_stimulus(netlist, DURATION, seed=44)
    short = 2_000  # far below the last stimulus toggle
    backend, options = resolve_backend("gatspi-sharded:shards=1")
    session = backend.prepare(netlist, annotation=annotation, **options)
    fused = session.run_many(
        [RunSpec(stimulus=long_stimulus, duration=short) for _ in range(3)]
    )
    assert [r.stats.fused_requests for r in fused] == [3, 3, 3]
    reference = _run(
        "gatspi", netlist, annotation, long_stimulus, duration=short
    )
    for index, result in enumerate(fused):
        _assert_bit_identical(reference, result, f"clipped fusion {index}")


@pytest.mark.parametrize("overlap", [0, 7])
def test_sharded_backend_degrades_to_passthrough_with_pinned_overlap(overlap):
    """A user-pinned settle margin disables partitioning entirely.

    A margin below the critical path makes window results
    partition-dependent, so sharding under it would silently diverge
    from single-session gatspi with the identical config (regression) —
    the session must fall back to the single-shard passthrough and stay
    bit-identical.
    """
    netlist, annotation = _prepare_design(8, num_gates=24)
    stimulus = build_random_stimulus(netlist, 12_000, seed=9)
    config = SimConfig(window_overlap=overlap, cycle_parallelism=8)
    backend, options = resolve_backend("gatspi-sharded:shards=4,workers=4")
    session = backend.prepare(netlist, annotation=annotation, config=config, **options)
    assert session.shard_count == 1
    candidate = session.run(stimulus, duration=12_000)
    assert candidate.stats.shards == 1
    reference = _run(
        "gatspi", netlist, annotation, stimulus, config=config, duration=12_000
    )
    _assert_bit_identical(reference, candidate, f"pinned overlap={overlap}")


def test_run_many_falls_back_to_serial_with_pinned_overlap():
    """A user-pinned settle margin disables fusion but not batching."""
    from repro.api import RunSpec

    netlist, annotation = _prepare_design(7)
    stimulus = build_random_stimulus(netlist, 12_000, seed=5)
    config = SimConfig(window_overlap=64, cycle_parallelism=4)
    backend, options = resolve_backend("gatspi-sharded:shards=1")
    session = backend.prepare(netlist, annotation=annotation, config=config, **options)
    results = session.run_many(
        [RunSpec(stimulus=stimulus, duration=12_000) for _ in range(2)]
    )
    assert [r.stats.fused_requests for r in results] == [1, 1]
    reference = _run(
        "gatspi", netlist, annotation, stimulus, config=config, duration=12_000
    )
    for result in results:
        _assert_bit_identical(reference, result, "serial fallback")


def test_sharded_backend_scalar_oracle_executors():
    """Sharding composes with the oracle executor options."""
    netlist, annotation = _prepare_design(2, num_gates=20)
    stimulus = build_random_stimulus(netlist, 8_000, seed=12)
    reference = _run(
        "gatspi", netlist, annotation, stimulus, duration=8_000
    )
    candidate = _run(
        "gatspi-sharded:shards=2,workers=2,kernel=scalar,restructure=python",
        netlist, annotation, stimulus, duration=8_000,
    )
    assert candidate.stats.kernel_mode == "scalar"
    _assert_bit_identical(reference, candidate, "sharded scalar oracle")


def test_sharded_backend_saif_criterion_against_event():
    """The paper's accuracy criterion holds through the sharded path."""
    netlist, annotation = _prepare_design(3, num_gates=28)
    stimulus = build_random_stimulus(netlist, DURATION, seed=21)
    sharded = _run(
        "gatspi-sharded:shards=4,workers=4", netlist, annotation, stimulus
    )
    event = _run("event", netlist, annotation, stimulus)
    assert sharded.matches_toggle_counts(event), sharded.differing_nets(event)
