"""Dict-vs-array WaveformPool registration parity tests.

The pool's per-``(net, window)`` Python dict bookkeeping was replaced by
flat net-row/window-column registration tables.  These tests drive every
store path — per-waveform stores, pre-assigned kernel stores, the bulk
level store, and the bulk window load — while maintaining an explicit
*shadow dict* of what the old bookkeeping would have recorded, and check
that the array-backed tables answer ``pointer``/``toggle_count``/
``has_waveform``/``read_waveform``/``window_table`` identically.  Both
lazy registration (no design net index — the test-construction mode) and
fixed design-index registration (the engine mode) are covered, on every
available array backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Waveform, WaveformPool
from repro.core.xp import available_array_backends, get_array_backend

BACKENDS = available_array_backends()


@pytest.fixture(params=BACKENDS)
def xp(request):
    return get_array_backend(request.param)


def _wave(initial, toggles):
    return Waveform.from_initial_and_toggles(initial, toggles)


class ShadowPool:
    """The old dict bookkeeping, re-implemented as the reference model."""

    def __init__(self):
        self.pointers = {}
        self.sizes = {}
        self.counts = {}

    def register(self, net, window, address, size, count):
        key = (net, window)
        self.pointers[key] = int(address)
        self.sizes[key] = int(size)
        self.counts[key] = int(count)

    def assert_matches(self, pool: WaveformPool):
        for (net, window), address in self.pointers.items():
            assert pool.has_waveform(net, window)
            assert pool.pointer(net, window) == address, (net, window)
            assert pool.toggle_count(net, window) == self.counts[(net, window)]
            wave = pool.read_waveform(net, window)
            assert len(wave) == self.sizes[(net, window)]


class TestScalarStoreParity:
    def test_store_waveform_registration(self, xp):
        pool = WaveformPool(1 << 12, xp=xp)
        shadow = ShadowPool()
        waves = {
            ("a", 0): _wave(0, [5, 9]),
            ("a", 3): _wave(1, [7]),
            ("b", 0): _wave(1, []),
            ("b", 7): _wave(0, [1, 2, 3, 4]),
        }
        for (net, window), wave in waves.items():
            address = pool.store_waveform(net, window, wave)
            shadow.register(net, window, address, len(wave), wave.toggle_count())
        shadow.assert_matches(pool)
        for (net, window), wave in waves.items():
            assert pool.read_waveform(net, window) == wave

    def test_store_kernel_output_registration(self, xp):
        pool = WaveformPool(1 << 12, xp=xp)
        shadow = ShadowPool()
        address = pool.allocate(6)
        pool.store_kernel_output("n", 2, address, 1, [15, 30])
        shadow.register("n", 2, address, 5, 2)  # marker + 0 + 2 toggles + EOW
        shadow.assert_matches(pool)

    def test_missing_pairs_raise_and_report(self, xp):
        pool = WaveformPool(1 << 12, xp=xp)
        pool.store_waveform("n", 1, _wave(0, [5]))
        assert not pool.has_waveform("n", 0)
        assert not pool.has_waveform("m", 1)
        with pytest.raises(KeyError):
            pool.pointer("n", 0)
        with pytest.raises(KeyError):
            pool.toggle_count("m", 1)
        with pytest.raises(KeyError):
            pool.window_table(["n"], [0])

    def test_reset_clears_registration(self, xp):
        pool = WaveformPool(1 << 12, xp=xp)
        pool.store_waveform("n", 0, _wave(1, [3]))
        pool.reset()
        assert pool.used_words == 0
        assert not pool.has_waveform("n", 0)
        with pytest.raises(KeyError):
            pool.pointer("n", 0)
        # The name/window rows survive a reset; re-storing re-registers.
        pool.store_waveform("n", 0, _wave(0, [8]))
        assert pool.toggle_count("n", 0) == 1


class TestBulkStoreParity:
    def test_store_level_outputs_matches_scalar_stores(self, xp):
        """The block-scatter registration equals per-pair scalar stores."""
        bulk = WaveformPool(1 << 12, xp=xp)
        scalar = WaveformPool(1 << 12, xp=xp)
        shadow = ShadowPool()
        nets = ["x", "y", "z"]
        windows = [0, 1]
        initial_values = xp.asarray([1, 0, 0, 1, 1, 0], dtype=xp.int64)
        toggle_counts = xp.asarray([2, 0, 1, 1, 0, 3], dtype=xp.int64)
        toggle_starts = xp.asarray([0, 2, 2, 3, 4, 4], dtype=xp.int64)
        toggle_buffer = xp.asarray([10, 20, 7, 9, 5, 6, 8], dtype=xp.int64)
        sizes = 2 + toggle_counts + xp.astype(initial_values != 0, xp.int64)
        addresses = bulk.allocate_batch(sizes)
        bulk.store_level_outputs(
            nets, windows, addresses,
            initial_values, toggle_buffer, toggle_starts, toggle_counts,
        )
        host_addr = xp.to_host(addresses)
        host_iv = xp.to_host(initial_values)
        host_counts = xp.to_host(toggle_counts)
        host_starts = xp.to_host(toggle_starts)
        host_buffer = xp.to_host(toggle_buffer)
        for n, net in enumerate(nets):
            for w, window in enumerate(windows):
                t = n * len(windows) + w
                toggles = host_buffer[
                    host_starts[t] : host_starts[t] + host_counts[t]
                ].tolist()
                address = scalar.allocate(int(host_iv[t] != 0) + host_counts[t] + 2)
                scalar.store_kernel_output(
                    net, window, address, int(host_iv[t]), toggles
                )
                shadow.register(
                    net, window, int(host_addr[t]),
                    2 + host_counts[t] + int(host_iv[t] != 0), int(host_counts[t]),
                )
        shadow.assert_matches(bulk)
        for net in nets:
            for window in windows:
                assert bulk.read_waveform(net, window) == scalar.read_waveform(
                    net, window
                ), (net, window)

    def test_load_windows_matches_store_waveform(self, xp):
        """Bulk window loading registers exactly like per-pair stores."""
        from repro.core.restructure import lower_stimulus, slice_windows

        stimulus = {
            "a": _wave(0, [100, 250, 900, 1500]),
            "b": _wave(1, [50, 1200]),
            "c": _wave(0, []),
        }
        nets = tuple(stimulus)
        events = lower_stimulus(nets, stimulus).to_device(xp)
        starts = xp.asarray([0, 500, 1000], dtype=xp.int64)
        ends = xp.asarray([500, 1000, 2000], dtype=xp.int64)
        slices = slice_windows(events, starts, ends, xp=xp)

        bulk = WaveformPool(1 << 12, xp=xp)
        bulk.load_windows(
            nets, [0, 1, 2],
            slices.initial_values, events.times, slices.starts, slices.counts,
            starts,
        )
        reference = WaveformPool(1 << 12, xp=xp)
        host_starts = xp.to_host(starts)
        host_ends = xp.to_host(ends)
        for net, wave in stimulus.items():
            for w in range(3):
                reference.store_waveform(
                    net, w,
                    wave.window(int(host_starts[w]), int(host_ends[w]), rebase=True),
                )
        for net in nets:
            for w in range(3):
                assert bulk.read_waveform(net, w) == reference.read_waveform(net, w)
                assert bulk.pointer(net, w) == reference.pointer(net, w)
                assert bulk.toggle_count(net, w) == reference.toggle_count(net, w)

    def test_window_table_net_major_order(self, xp):
        pool = WaveformPool(1 << 12, xp=xp)
        shadow = {}
        for net in ("p", "q"):
            for window in (0, 1):
                wave = _wave(0, [5 + 10 * window])
                shadow[(net, window)] = (
                    pool.store_waveform(net, window, wave),
                    wave.toggle_count(),
                )
        addresses, counts = pool.window_table(["p", "q"], [0, 1])
        addresses = xp.to_host(addresses).tolist()
        counts = xp.to_host(counts).tolist()
        expected = [shadow[(n, w)] for n in ("p", "q") for w in (0, 1)]
        assert addresses == [e[0] for e in expected]
        assert counts == [e[1] for e in expected]


class TestFixedIndexMode:
    """Pools constructed the engine way: design net index + window list."""

    def _pool(self, xp, nets, windows):
        net_index = {net: i for i, net in enumerate(nets)}
        return WaveformPool(
            1 << 12, xp=xp, net_index=net_index, window_indices=windows
        )

    def test_fixed_rows_match_lazy_behaviour(self, xp):
        fixed = self._pool(xp, ["a", "b"], [4, 9])
        lazy = WaveformPool(1 << 12, xp=xp)
        for pool in (fixed, lazy):
            pool.store_waveform("a", 4, _wave(0, [3]))
            pool.store_waveform("b", 9, _wave(1, [5, 6]))
        for net, window in (("a", 4), ("b", 9)):
            assert fixed.pointer(net, window) == lazy.pointer(net, window)
            assert fixed.toggle_count(net, window) == lazy.toggle_count(net, window)
            assert fixed.read_waveform(net, window) == lazy.read_waveform(net, window)

    def test_null_row_registration_and_gather(self, xp):
        pool = self._pool(xp, ["a", "b"], [0, 1])
        pool.store_waveform("a", 0, _wave(0, [3, 9]))
        pool.store_waveform("a", 1, _wave(0, [4]))
        pool.store_waveform("b", 0, _wave(1, [5]))
        pool.store_waveform("b", 1, _wave(1, []))
        null_address = pool.store_padding_waveform()
        # One 2-pin gate reading (a, b) and one 1-pin gate reading (b) with
        # a padded second pin -> the null row.
        input_net_ids = xp.asarray([[0, 1], [1, 2]], dtype=xp.int64)
        pointers, capacities = pool.gather_level_inputs(input_net_ids)
        pointers = xp.to_host(pointers)
        capacities = xp.to_host(capacities).tolist()
        # Task order is gate-major: (gate0, w0), (gate0, w1), (gate1, w0), ...
        assert pointers[0].tolist() == [pool.pointer("a", 0), pool.pointer("b", 0)]
        assert pointers[1].tolist() == [pool.pointer("a", 1), pool.pointer("b", 1)]
        assert pointers[2].tolist() == [pool.pointer("b", 0), null_address]
        assert pointers[3].tolist() == [pool.pointer("b", 1), null_address]
        assert capacities == [3, 1, 1, 0]

    def test_gather_rejects_unregistered_inputs(self, xp):
        """An unstored (net, window) input must raise, not silently wrap
        the -1 pointer sentinel to the end of the pool."""
        pool = self._pool(xp, ["a", "b"], [0])
        pool.store_padding_waveform()
        pool.store_waveform("a", 0, _wave(0, [3]))  # "b" never stored
        ids = xp.asarray([[0, 1]], dtype=xp.int64)
        with pytest.raises(KeyError):
            pool.gather_level_inputs(ids)

    def test_lazy_net_after_fixed_index_keeps_null_row_stable(self, xp):
        """Unknown names register past the null row, never moving it.

        Compile-time ``input_net_ids`` tensors encode the null id
        statically (``PackedDesign.null_net_id``), so a lazily-registered
        extra net must not shift the null row — padded pins would
        otherwise silently gather the new net's waveform (regression).
        """
        pool = self._pool(xp, ["a"], [0])
        null_address = pool.store_padding_waveform()
        pool.store_waveform("a", 0, _wave(0, [2]))
        pool.store_waveform("late", 0, _wave(1, [4]))
        assert pool.toggle_count("late", 0) == 1
        assert pool.read_waveform("late", 0) == _wave(1, [4])
        # The design's static null id (1 = len(net_index)) still resolves
        # to the null waveform with zero capacity after the lazy store.
        ids = xp.asarray([[0, 1]], dtype=xp.int64)
        pointers, capacities = pool.gather_level_inputs(ids)
        assert xp.to_host(pointers)[0].tolist() == [
            pool.pointer("a", 0), null_address
        ]
        assert xp.to_host(capacities).tolist() == [1]
