"""Tests for the design-rule analysis engine (``repro.analysis``).

Pathological designs each assert the exact rule id + severity that catches
them; the prepare-path wiring (strict/warn/off), the fingerprint-keyed
report cache, the serving front door's eager rejection, the legacy
``validate_netlist`` shim, and the ``python -m repro.analysis`` CLI are all
exercised here.
"""

from __future__ import annotations

import json
import time
import warnings

import pytest

from repro.analysis import (
    AnalysisReport,
    AnalysisWarning,
    DesignAnalysisError,
    RULES,
    Severity,
    analysis_cache_info,
    analyze_design,
    available_rules,
    clear_analysis_cache,
)
from repro.api import get_backend
from repro.bench.designs import array_multiplier
from repro.core.config import SimConfig
from repro.core.waveform import EOW
from repro.netlist import Netlist, NetlistBuilder, NetlistError, validate_netlist
from repro.sdf.types import SdfCell, SdfFile, SdfIoPath
from repro.serve import DesignRejectedError, ServeRequest, SimulationService
from repro.waveforms import TestbenchSpec, stimulus_for_netlist

CONFIG = SimConfig(device="numpy")


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_analysis_cache()
    yield
    clear_analysis_cache()


# ----------------------------------------------------------------------
# Design fixtures
# ----------------------------------------------------------------------
def clean_design() -> Netlist:
    builder = NetlistBuilder("clean")
    a = builder.input("a")
    b = builder.input("b")
    n1 = builder.gate("NAND2", [a, b], name="u0")
    builder.output("y")
    builder.gate("INV", [n1], output_net="y", name="u1")
    return builder.build()


def multi_level_loop_design() -> Netlist:
    """A 3-gate cycle with a downstream cone that must NOT be named."""
    netlist = Netlist("looped")
    netlist.add_input("a")
    netlist.add_output("y")
    netlist.add_instance("NAND2", "u0", {"A": "a", "B": "n2", "Y": "n0"})
    netlist.add_instance("INV", "u1", {"A": "n0", "Y": "n1"})
    netlist.add_instance("BUF", "u2", {"A": "n1", "Y": "n2"})
    netlist.add_instance("INV", "u3", {"A": "n2", "Y": "y"})  # downstream only
    return netlist


def self_loop_design() -> Netlist:
    netlist = Netlist("selfloop")
    netlist.add_input("a")
    netlist.add_output("y")
    netlist.add_instance("NAND2", "u0", {"A": "a", "B": "n0", "Y": "n0"})
    netlist.add_instance("INV", "u1", {"A": "n0", "Y": "y"})
    return netlist


def constant_cone_design() -> Netlist:
    builder = NetlistBuilder("const")
    a = builder.input("a")
    one = builder.gate("TIEHI", [], name="tie1")
    zero = builder.gate("TIELO", [], name="tie0")
    n = builder.gate("NAND2", [one, zero], name="u_const")
    builder.output("y")
    builder.gate("XOR2", [a, n], output_net="y", name="u_live")
    return builder.build()


# ----------------------------------------------------------------------
# Structural rules on pathological designs: exact rule id + severity
# ----------------------------------------------------------------------
class TestStructuralRules:
    def test_clean_design_is_clean(self):
        report = analyze_design(clean_design())
        assert report.is_clean
        assert not report.has_errors
        assert report.rules_run == available_rules()

    def test_multi_level_loop_names_only_cycle_members(self):
        report = analyze_design(multi_level_loop_design())
        findings = report.findings_for("combinational-loop")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.severity is Severity.ERROR
        assert set(finding.instances) == {"u0", "u1", "u2"}  # u3 is downstream
        assert finding.data["self_loop"] is False

    def test_self_loop_detected(self):
        report = analyze_design(self_loop_design())
        (finding,) = report.findings_for("combinational-loop")
        assert finding.severity is Severity.ERROR
        assert finding.instances == ("u0",)
        assert finding.data["self_loop"] is True

    def test_undriven_input_is_error(self):
        netlist = Netlist("bad")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_instance("AND2", "u0", {"A": "a", "B": "nowhere", "Y": "y"})
        report = analyze_design(netlist)
        (finding,) = report.findings_for("undriven-input")
        assert finding.severity is Severity.ERROR
        assert "nowhere" in finding.nets
        assert report.has_errors

    def test_unconnected_output_is_error(self):
        netlist = Netlist("floatout")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_output("z")
        netlist.add_instance("INV", "u0", {"A": "a", "Y": "y"})
        report = analyze_design(netlist)
        (finding,) = report.findings_for("unconnected-output")
        assert finding.severity is Severity.ERROR
        assert finding.nets == ("z",)

    def test_multi_driven_net_is_error(self):
        netlist = Netlist("mdrv")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_instance("INV", "u0", {"A": "a", "Y": "n0"})
        netlist.add_instance("BUF", "u1", {"A": "a", "Y": "n1"})
        netlist.add_instance("NAND2", "u2", {"A": "n0", "B": "n1", "Y": "y"})
        # Construction forbids double-driving, so corrupt the netlist the
        # way a buggy transform would: rewire u1's output onto u0's net.
        netlist.instances["u1"].connections["Y"] = "n0"
        report = analyze_design(netlist)
        (finding,) = report.findings_for("multi-driven-net")
        assert finding.severity is Severity.ERROR
        assert finding.nets == ("n0",)
        assert set(finding.instances) == {"u0", "u1"}

    def test_dangling_net_is_warning(self):
        builder = NetlistBuilder("dangle")
        a = builder.input("a")
        builder.gate("INV", [a], name="u_dead")  # output feeds nothing
        builder.output("y")
        builder.gate("BUF", [a], output_net="y", name="u_live")
        report = analyze_design(builder.build())
        (finding,) = report.findings_for("dangling-net")
        assert finding.severity is Severity.WARNING
        assert not report.has_errors  # warnings alone keep the design runnable

    def test_all_constant_input_gate_is_info(self):
        report = analyze_design(constant_cone_design())
        (finding,) = report.findings_for("constant-cone")
        assert finding.severity is Severity.INFO
        assert "u_const" in finding.instances
        assert "u_live" not in finding.instances

    def test_unreachable_cone_is_info(self):
        builder = NetlistBuilder("dead")
        a = builder.input("a")
        n = builder.gate("INV", [a], name="u_dead0")
        builder.gate("INV", [n], name="u_dead1")  # cone reaches no output
        builder.output("y")
        builder.gate("BUF", [a], output_net="y", name="u_live")
        report = analyze_design(builder.build())
        (finding,) = report.findings_for("unreachable-cone")
        assert finding.severity is Severity.INFO
        assert set(finding.instances) == {"u_dead0", "u_dead1"}

    def test_fanout_outlier_is_info(self):
        builder = NetlistBuilder("star")
        a = builder.input("a")
        b = builder.input("b")
        hub = builder.gate("BUF", [a], name="u_hub")
        sinks = [builder.gate("INV", [hub], name=f"u_s{i}") for i in range(24)]
        builder.output("y")
        builder.gate("NAND2", [sinks[0], b], output_net="y", name="u_out")
        report = analyze_design(builder.build())
        findings = report.findings_for("fanout-outlier")
        assert findings and findings[0].severity is Severity.INFO
        assert hub in findings[0].nets


class TestSdfAndDelayRules:
    def _netlist(self):
        return clean_design()

    def test_sdf_nonexistent_instance_is_warning(self):
        sdf = SdfFile(
            design="clean",
            cells=[
                SdfCell("INV", "ghost", iopaths=[SdfIoPath("A", "Y", 5.0, 5.0)]),
            ],
        )
        report = analyze_design(self._netlist(), sdf=sdf)
        (finding,) = report.findings_for("sdf-unknown-instance")
        assert finding.severity is Severity.WARNING
        assert finding.instances == ("ghost",)

    def test_sdf_coverage_gaps_are_warnings(self):
        # u0 covered on only one of two pins; u1 not covered at all.
        sdf = SdfFile(
            design="clean",
            cells=[
                SdfCell("NAND2", "u0", iopaths=[SdfIoPath("A", "Y", 5.0, 5.0)]),
            ],
        )
        report = analyze_design(self._netlist(), sdf=sdf)
        findings = report.findings_for("sdf-coverage")
        assert {f.severity for f in findings} == {Severity.WARNING}
        missing = [f for f in findings if "no SDF IOPATH" in f.message]
        partial = [f for f in findings if "partial" in f.message]
        assert missing and missing[0].instances == ("u1",)
        assert partial and partial[0].data["missing_pins"] == {"u0": ["B"]}

    def test_negative_iopath_is_error(self):
        sdf = SdfFile(
            design="clean",
            cells=[
                SdfCell("NAND2", "u0", iopaths=[SdfIoPath("A", "Y", -2.0, 5.0)]),
            ],
        )
        report = analyze_design(self._netlist(), sdf=sdf)
        (finding,) = report.findings_for("negative-delay")
        assert finding.severity is Severity.ERROR
        assert finding.instances == ("u0",)
        assert report.has_errors

    def test_zero_iopath_is_warning(self):
        sdf = SdfFile(
            design="clean",
            cells=[
                SdfCell("NAND2", "u0", iopaths=[SdfIoPath("A", "Y", 0.0, 5.0)]),
            ],
        )
        report = analyze_design(self._netlist(), sdf=sdf)
        (finding,) = report.findings_for("zero-delay")
        assert finding.severity is Severity.WARNING
        assert finding.instances == ("u0",)
        assert not report.has_errors

    def test_eow_overflow_risk_is_error(self):
        report = analyze_design(self._netlist(), horizon=EOW - 1)
        (finding,) = report.findings_for("eow-overflow-risk")
        assert finding.severity is Severity.ERROR
        assert finding.data["horizon"] == EOW - 1

    def test_safe_horizon_has_no_overflow_finding(self):
        report = analyze_design(self._netlist(), horizon=100_000)
        assert report.findings_for("eow-overflow-risk") == []


# ----------------------------------------------------------------------
# Report mechanics
# ----------------------------------------------------------------------
class TestReport:
    def test_json_round_trip(self):
        report = analyze_design(multi_level_loop_design())
        data = json.loads(report.to_json())
        restored = AnalysisReport.from_dict(data)
        assert restored.design == report.design
        assert restored.rules_run == report.rules_run
        assert [f.rule_id for f in restored.findings] == [
            f.rule_id for f in report.findings
        ]
        assert restored.findings[0].severity is report.findings[0].severity

    def test_severity_counts_and_summary(self):
        report = analyze_design(multi_level_loop_design())
        counts = report.severity_counts()
        assert counts["error"] >= 1
        assert "error" in report.summary()

    def test_rule_subset_runs_only_requested_rules(self):
        report = analyze_design(
            multi_level_loop_design(), rules=["dangling-net"]
        )
        assert report.rules_run == ("dangling-net",)
        assert report.findings_for("combinational-loop") == []

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            analyze_design(clean_design(), rules=["no-such-rule"])


class TestReportCache:
    def test_second_analysis_is_a_cache_hit(self):
        design = clean_design()
        first = analyze_design(design)
        second = analyze_design(design)
        assert second is first
        info = analysis_cache_info()
        assert info["runs"] == 1
        assert info["hits"] == 1

    def test_structurally_identical_designs_share_a_report(self):
        analyze_design(clean_design())
        analyze_design(clean_design())  # fresh object, same content
        assert analysis_cache_info()["runs"] == 1

    def test_distinct_inputs_are_distinct_entries(self):
        design = clean_design()
        analyze_design(design)
        analyze_design(design, horizon=10)
        analyze_design(design, rules=["dangling-net"])
        assert analysis_cache_info()["runs"] == 3

    def test_use_cache_false_always_reruns(self):
        design = clean_design()
        analyze_design(design, use_cache=False)
        analyze_design(design, use_cache=False)
        assert analysis_cache_info()["runs"] == 2


# ----------------------------------------------------------------------
# Prepare-path wiring
# ----------------------------------------------------------------------
class TestPrepareWiring:
    def test_warn_mode_attaches_report(self):
        session = get_backend("gatspi").prepare(clean_design(), config=CONFIG)
        report = session.analysis_report
        assert report is not None
        assert report.is_clean

    def test_off_mode_skips_analysis(self):
        session = get_backend("gatspi").prepare(
            clean_design(), config=CONFIG.with_updates(analysis="off")
        )
        assert session.analysis_report is None
        assert analysis_cache_info()["runs"] == 0

    def test_strict_mode_raises_before_compile(self):
        with pytest.raises(DesignAnalysisError) as excinfo:
            get_backend("gatspi").prepare(
                self_loop_design(), config=CONFIG.with_updates(analysis="strict")
            )
        report = excinfo.value.report
        assert report.has_errors
        assert report.findings_for("combinational-loop")

    def test_warn_mode_warns_on_errors(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(NetlistError):
                # Analysis warns; the engine's own levelization then fails.
                get_backend("gatspi").prepare(self_loop_design(), config=CONFIG)
        assert any(issubclass(w.category, AnalysisWarning) for w in caught)

    def test_repeated_prepare_does_not_reanalyze(self):
        design = clean_design()
        get_backend("gatspi").prepare(design, config=CONFIG)
        get_backend("event").prepare(design, config=CONFIG)
        get_backend("gatspi").prepare(design, config=CONFIG)
        assert analysis_cache_info()["runs"] == 1

    def test_every_builtin_backend_attaches_report(self):
        design = clean_design()
        for name in ("gatspi", "event", "zero-delay", "threaded-cpu"):
            session = get_backend(name).prepare(design, config=CONFIG)
            assert session.analysis_report is not None, name

    def test_invalid_analysis_mode_rejected(self):
        with pytest.raises(ValueError, match="analysis"):
            SimConfig(device="numpy", analysis="sometimes")

    def test_analysis_overhead_under_5_percent(self):
        """End-to-end: ``analysis="warn"`` adds <5% to a cold prepare of a
        Table-2 bench design (Industry Design B's generator parameters).

        Analysis shares its levelization and netlist fingerprint with the
        engine's compile (the one-shot handoff + the levelize memo), so
        the marginal cost is only the rule evaluation itself.  Shared CI
        hardware makes single timings noisy, so off/warn prepares are
        interleaved as cold pairs (CPU time, so co-tenant preemption does
        not count against either side) and the best pairwise ratio is
        asserted — drift hits both halves of a pair alike, while a real
        overhead regression shifts every pair up.
        """
        from repro.bench.designs import industry_like
        from repro.core.compile_cache import clear_compile_cache

        design = industry_like(
            gate_count=2000, num_flops=250, depth=22, seed=112, name="design_b"
        )
        backend = get_backend("gatspi")

        def cold_prepare(mode: str) -> float:
            clear_compile_cache()
            clear_analysis_cache()
            config = SimConfig(device="numpy", analysis=mode)
            start = time.process_time()
            backend.prepare(design, config=config)
            return time.process_time() - start

        cold_prepare("off")
        cold_prepare("warn")  # warm up imports and allocators
        ratios = []
        for _ in range(5):
            off = cold_prepare("off")
            warn = cold_prepare("warn")
            ratios.append(warn / off)
        best = min(ratios)
        assert best < 1.05, (
            f"analysis='warn' prepare overhead was "
            f"{(best - 1) * 100:.1f}% in the best of {len(ratios)} "
            f"interleaved cold pairs (all: "
            f"{[f'{(r - 1) * 100:.1f}%' for r in ratios]})"
        )


# ----------------------------------------------------------------------
# Serving front door
# ----------------------------------------------------------------------
def _stimulus_for(netlist):
    spec = TestbenchSpec(
        name="t", cycles=4, clock_period=1000, activity_factor=0.7, seed=7
    )
    return stimulus_for_netlist(netlist, spec)


class TestServeAdmission:
    def test_bad_design_rejected_at_submit(self):
        # Only the strict mode rejects at the front door; the default
        # "warn" attaches the report and proceeds (SimConfig's documented
        # semantics — regression-tested in tests/test_serve.py).
        netlist = self_loop_design()
        service = SimulationService(max_workers=1)
        try:
            with pytest.raises(DesignRejectedError) as excinfo:
                service.submit(
                    ServeRequest(
                        netlist=netlist,
                        stimulus={},
                        config=CONFIG.with_updates(analysis="strict"),
                        cycles=4,
                    )
                )
            assert excinfo.value.report.has_errors
            assert "combinational-loop" in str(excinfo.value)
            assert service.stats()["rejected"] == 1
            assert service.stats()["submitted"] == 0
        finally:
            service.close()

    def test_analysis_off_bypasses_admission(self):
        netlist = self_loop_design()
        service = SimulationService(max_workers=1)
        try:
            future = service.submit(
                ServeRequest(
                    netlist=netlist,
                    stimulus={},
                    config=CONFIG.with_updates(analysis="off"),
                    cycles=4,
                )
            )
            # Admission let it through; the failure surfaces later, on the
            # future, keeping the old (lazy) failure mode available.
            with pytest.raises(Exception):
                future.result(timeout=30)
        finally:
            service.close()

    def test_clean_design_served(self):
        netlist = clean_design()
        service = SimulationService(max_workers=1)
        try:
            response = service.run(
                ServeRequest(
                    netlist=netlist,
                    stimulus=_stimulus_for(netlist),
                    config=CONFIG,
                    cycles=4,
                )
            )
            assert response.result.duration > 0
        finally:
            service.close()


# ----------------------------------------------------------------------
# Legacy validate_netlist shim
# ----------------------------------------------------------------------
class TestValidateShim:
    def test_dangling_nets_now_affect_cleanliness(self):
        builder = NetlistBuilder("dangle")
        a = builder.input("a")
        builder.gate("INV", [a], name="u_dead")
        builder.output("y")
        builder.gate("BUF", [a], output_net="y", name="u_live")
        report = validate_netlist(builder.build())
        assert report.dangling_nets
        assert not report.is_clean  # the old asymmetry: this used to be clean
        assert not report.has_fatal
        assert report.warnings  # surfaced, not silently carried
        report.raise_if_fatal()  # still not fatal

    def test_loop_reported_with_members(self):
        report = validate_netlist(multi_level_loop_design())
        assert report.combinational_loop
        assert report.loop_instances == ["u0", "u1", "u2"]
        with pytest.raises(NetlistError, match="loop"):
            report.raise_if_fatal()

    def test_shim_hits_analysis_cache(self):
        design = clean_design()
        validate_netlist(design)
        validate_netlist(design)
        assert analysis_cache_info()["runs"] == 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def _main(self, *argv):
        from repro.analysis.__main__ import main

        return main(list(argv))

    def test_demo_is_clean_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert self._main("--demo", "--json", str(out)) == 0
        data = json.loads(out.read_text())
        assert data["design"]
        assert set(data) >= {"design", "findings", "rules_run"}
        capsys.readouterr()

    def test_netlist_file_with_errors_exits_1(self, tmp_path, capsys):
        from repro.netlist import write_verilog

        path = tmp_path / "loop.v"
        path.write_text(write_verilog(multi_level_loop_design()))
        assert self._main(str(path)) == 1
        assert "combinational-loop" in capsys.readouterr().out

    def test_clean_netlist_with_sdf(self, tmp_path, capsys):
        from repro.netlist import write_verilog

        netlist_path = tmp_path / "clean.v"
        netlist_path.write_text(write_verilog(clean_design()))
        sdf_path = tmp_path / "clean.sdf"
        sdf_path.write_text(
            '(DELAYFILE\n'
            '  (SDFVERSION "3.0")\n'
            '  (DESIGN "clean")\n'
            '  (TIMESCALE 1ps)\n'
            '  (CELL (CELLTYPE "NAND2") (INSTANCE u0)\n'
            '    (DELAY (ABSOLUTE (IOPATH A Y (5) (6)) (IOPATH B Y (5) (6)))))\n'
            '  (CELL (CELLTYPE "INV") (INSTANCE u1)\n'
            '    (DELAY (ABSOLUTE (IOPATH A Y (3) (3)))))\n'
            ')\n'
        )
        assert self._main(str(netlist_path), str(sdf_path)) == 0
        capsys.readouterr()

    def test_strict_fails_on_warnings(self, tmp_path, capsys):
        from repro.netlist import write_verilog

        builder = NetlistBuilder("dangle")
        a = builder.input("a")
        builder.gate("INV", [a], name="u_dead")
        builder.output("y")
        builder.gate("BUF", [a], output_net="y", name="u_live")
        path = tmp_path / "dangle.v"
        path.write_text(write_verilog(builder.build()))
        assert self._main(str(path)) == 0
        assert self._main(str(path), "--strict") == 1
        capsys.readouterr()

    def test_list_rules_and_bad_args(self, capsys):
        assert self._main("--list-rules") == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out
        assert self._main("--demo", "--rules", "no-such-rule") == 2
        assert self._main("/no/such/netlist.v") == 2
        capsys.readouterr()
