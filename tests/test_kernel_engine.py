"""Tests for the simulation kernel, memory pool, and GATSPI engine."""

import pytest

from repro.cells import DEFAULT_LIBRARY
from repro.core import (
    DeviceMemoryError,
    GateKernelInputs,
    GatspiEngine,
    SimConfig,
    StimulusError,
    Waveform,
    WaveformPool,
    simulate_gate_window,
)
from repro.core.delaytable import DelayArc, GateDelayTable
from repro.core.kernel import count_input_events, resolve_gate_delay
from repro.core.waveform import EOW
from repro.sdf import UnitDelayModel, annotation_from_design_delays


def make_gate_inputs(cell_name, delay=10, wire=(0.0, 0.0), conditional=None):
    cell = DEFAULT_LIBRARY.get(cell_name)
    table = GateDelayTable.uniform(cell.inputs, rise=delay, fall=delay)
    if conditional:
        table.add_arc(conditional)
    return GateKernelInputs(
        truth_table=DEFAULT_LIBRARY.truth_table(cell_name).table,
        delay_arrays=tuple(table.table_for(pin) for pin in cell.inputs),
        wire_rise=tuple(wire[0] for _ in cell.inputs),
        wire_fall=tuple(wire[1] for _ in cell.inputs),
    )


def run_single_gate(cell_name, input_waves, **kwargs):
    pool = WaveformPool(1 << 16)
    pointers = [
        pool.store_waveform(f"in{i}", 0, wave) for i, wave in enumerate(input_waves)
    ]
    gate = make_gate_inputs(cell_name, **kwargs)
    return simulate_gate_window(pool.data, pointers, gate)


class TestKernel:
    def test_inverter_delays_transition(self):
        result = run_single_gate(
            "INV", [Waveform.from_initial_and_toggles(0, [100, 200])], delay=10
        )
        assert result.initial_value == 1
        assert result.toggle_times == [110, 210]

    def test_and_gate_truth(self):
        a = Waveform.from_initial_and_toggles(0, [100])
        b = Waveform.from_initial_and_toggles(1, [300])
        result = run_single_gate("AND2", [a, b], delay=5)
        assert result.initial_value == 0
        assert result.toggle_times == [105, 305]

    def test_glitch_narrower_than_delay_is_filtered(self):
        # XOR sees a 3-unit input skew, gate delay 10: the output pulse is
        # rejected by inertial filtering (PATHPULSEPERCENT=100).
        a = Waveform.from_initial_and_toggles(0, [100])
        b = Waveform.from_initial_and_toggles(0, [103])
        result = run_single_gate("XOR2", [a, b], delay=10)
        assert result.toggle_times == []

    def test_glitch_wider_than_delay_survives(self):
        a = Waveform.from_initial_and_toggles(0, [100])
        b = Waveform.from_initial_and_toggles(0, [150])
        result = run_single_gate("XOR2", [a, b], delay=10)
        assert result.toggle_times == [110, 160]

    def test_msi_simultaneous_inputs_single_evaluation(self):
        # Both inputs of a NAND fall at the same timestamp: one output rise.
        a = Waveform.from_initial_and_toggles(1, [100])
        b = Waveform.from_initial_and_toggles(1, [100])
        result = run_single_gate("NAND2", [a, b], delay=7)
        assert result.initial_value == 0
        assert result.toggle_times == [107]

    def test_wire_delay_shifts_arrival(self):
        result = run_single_gate(
            "INV", [Waveform.from_initial_and_toggles(0, [100])],
            delay=10, wire=(4.0, 4.0),
        )
        assert result.toggle_times == [114]

    def test_wire_inertial_filter_swallows_narrow_pulse(self):
        # Pulse of width 3 on the input with wire delay 5: never reaches the gate.
        wave = Waveform.from_initial_and_toggles(0, [100, 103, 400])
        result = run_single_gate("BUF", [wave], delay=2, wire=(5.0, 5.0))
        assert result.toggle_times == [407]

    def test_conditional_delay_selected_by_side_input(self):
        conditional = DelayArc(pin="B", rise=3, fall=3, condition={"A1": 1, "A2": 1})
        a1 = Waveform.constant(1)
        a2 = Waveform.constant(1)
        b = Waveform.from_initial_and_toggles(0, [100])
        result = run_single_gate("AOI21", [a1, a2, b], delay=20,
                                 conditional=conditional)
        # AOI21 output is already 0 with A1=A2=1, so B rising does nothing.
        assert result.toggle_times == []
        # Now with A1=0: the unconditional 20 applies.
        a1 = Waveform.constant(0)
        result = run_single_gate("AOI21", [a1, a2, b], delay=20)
        assert result.toggle_times == [120]

    def test_zero_input_cell(self):
        pool = WaveformPool(1 << 10)
        gate = GateKernelInputs(
            truth_table=DEFAULT_LIBRARY.truth_table("TIEHI").table,
            delay_arrays=(), wire_rise=(), wire_fall=(),
        )
        result = simulate_gate_window(pool.data, [], gate)
        assert result.initial_value == 1
        assert result.toggle_times == []

    def test_storage_words_accounts_for_marker(self):
        result = run_single_gate(
            "INV", [Waveform.from_initial_and_toggles(0, [50])], delay=1
        )
        # initial value 1: marker + establishing + 1 toggle + EOW = 4 words
        assert result.initial_value == 1
        assert result.storage_words == 4

    def test_resolve_gate_delay_fallbacks(self):
        table = GateDelayTable(("A",))
        table.add_arc(DelayArc(pin="A", rise=6, fall=None, input_edge=0))
        arrays = (table.table_for("A"),)
        assert resolve_gate_delay(arrays, [(0, 0)], 0, 0) == 6
        # Undefined exact edge falls back to the opposite edge.
        assert resolve_gate_delay(arrays, [(0, 1)], 0, 0) == 6
        # Completely undefined arc falls back to zero.
        assert resolve_gate_delay(arrays, [(0, 0)], 1, 0) == 0.0

    def test_count_input_events(self):
        pool = WaveformPool(1 << 12)
        p0 = pool.store_waveform("a", 0, Waveform.from_initial_and_toggles(0, [1, 2, 3]))
        p1 = pool.store_waveform("b", 0, Waveform.from_initial_and_toggles(1, [5]))
        assert count_input_events(pool.data, [p0, p1]) == 4


class TestWaveformPool:
    def test_allocation_is_even_aligned(self):
        pool = WaveformPool(1 << 12)
        pool.allocate(3)
        second = pool.allocate(2)
        assert second % 2 == 0

    def test_round_trip_store_read(self):
        pool = WaveformPool(1 << 12)
        wave = Waveform.from_initial_and_toggles(1, [10, 20, 35])
        pool.store_waveform("n", 3, wave)
        assert pool.read_waveform("n", 3) == wave

    def test_store_kernel_output(self):
        pool = WaveformPool(1 << 12)
        address = pool.allocate(5)
        pool.store_kernel_output("n", 0, address, 1, [15, 30])
        wave = pool.read_waveform("n", 0)
        assert wave.initial_value == 1
        assert wave.toggle_count() == 2

    def test_capacity_exhaustion(self):
        pool = WaveformPool(8)
        pool.allocate(6)
        with pytest.raises(DeviceMemoryError):
            pool.allocate(4)

    def test_missing_pointer(self):
        pool = WaveformPool(64)
        with pytest.raises(KeyError):
            pool.pointer("nope", 0)

    def test_reset(self):
        pool = WaveformPool(1 << 10)
        pool.store_waveform("n", 0, Waveform.constant(0))
        pool.reset()
        assert pool.used_words == 0
        assert not pool.has_waveform("n", 0)


class TestEngine:
    def build_stimulus(self, netlist, duration=4000):
        return {
            net: Waveform.from_initial_and_toggles(0, list(range(100, duration, 250)))
            for net in netlist.source_nets()
        }

    def test_requires_cycles_or_duration(self, small_netlist, small_annotation):
        engine = GatspiEngine(small_netlist, annotation=small_annotation)
        with pytest.raises(ValueError):
            engine.simulate(self.build_stimulus(small_netlist))

    def test_missing_stimulus_rejected(self, small_netlist, small_annotation):
        engine = GatspiEngine(small_netlist, annotation=small_annotation)
        with pytest.raises(StimulusError):
            engine.simulate({"a": Waveform.constant(0)}, cycles=4)

    def test_simulation_produces_all_nets(self, small_netlist, small_annotation):
        config = SimConfig(cycle_parallelism=2, clock_period=1000)
        engine = GatspiEngine(small_netlist, annotation=small_annotation, config=config)
        result = engine.simulate(self.build_stimulus(small_netlist), cycles=4)
        assert set(result.toggle_counts) == set(small_netlist.nets)
        assert result.stats.gate_count == small_netlist.gate_count
        assert result.stats.windows == 2
        assert result.kernel_runtime > 0

    def test_two_pass_and_single_pass_agree(self, random_netlist, random_annotation):
        stimulus = self.build_stimulus(random_netlist, duration=6000)
        base = SimConfig(cycle_parallelism=4, clock_period=1000)
        two_pass = GatspiEngine(
            random_netlist, annotation=random_annotation, config=base
        ).simulate(stimulus, cycles=6)
        single_pass = GatspiEngine(
            random_netlist,
            annotation=random_annotation,
            config=base.with_updates(two_pass=False),
        ).simulate(stimulus, cycles=6)
        assert two_pass.toggle_counts == single_pass.toggle_counts
        # The store pass doubles the kernel invocations.
        assert two_pass.stats.kernel_invocations == 2 * single_pass.stats.kernel_invocations

    def test_memory_segmentation_preserves_results(self, random_netlist, random_annotation):
        stimulus = self.build_stimulus(random_netlist, duration=6000)
        big = SimConfig(cycle_parallelism=4, clock_period=1000)
        # A pool this small cannot hold all windows at once, forcing the
        # engine to split the run into sequential segments (paper Section 4).
        tiny = big.with_updates(device_memory_gb=5e-6, waveform_pool_fraction=1.0)
        reference = GatspiEngine(
            random_netlist, annotation=random_annotation, config=big
        ).simulate(stimulus, cycles=6)
        segmented = GatspiEngine(
            random_netlist, annotation=random_annotation, config=tiny
        ).simulate(stimulus, cycles=6)
        assert segmented.stats.segments > 1
        assert segmented.toggle_counts == reference.toggle_counts

    def test_store_waveforms_can_be_disabled(self, small_netlist, small_annotation):
        config = SimConfig(store_waveforms=False, clock_period=1000)
        engine = GatspiEngine(small_netlist, annotation=small_annotation, config=config)
        result = engine.simulate(self.build_stimulus(small_netlist), cycles=4)
        assert result.waveforms == {}
        assert result.total_toggles() > 0

    def test_recompile_clears_stale_gate_inputs(self, small_netlist, small_annotation):
        """compile() must rebuild the lookup arrays from scratch.

        Regression test: ``_gate_inputs`` used to accumulate across compile()
        calls, so entries from a previous compilation (e.g. before a netlist
        edit) survived and could mask annotation/config changes.
        """
        engine = GatspiEngine(small_netlist, annotation=small_annotation)
        engine.compile()
        expected = set(engine._gate_inputs)
        engine._gate_inputs["stale_gate"] = engine._gate_inputs[next(iter(expected))]
        engine.compile()
        assert "stale_gate" not in engine._gate_inputs
        assert set(engine._gate_inputs) == expected

    def test_timings_are_populated(self, small_netlist, small_annotation):
        engine = GatspiEngine(small_netlist, annotation=small_annotation,
                              config=SimConfig(clock_period=1000))
        result = engine.simulate(self.build_stimulus(small_netlist), cycles=4)
        phases = result.timings.as_dict()
        assert phases["application"] >= phases["kernel"] > 0
