"""Tests for the wire-protocol serving front end (`repro.serve.wire`/`server`).

The contract surface:

* wire-served results are **bit-identical** to in-process service results,
  for full requests and for delta (base_key + edits) requests;
* structured errors round-trip onto the same exception classes in-process
  callers see;
* malformed traffic — oversized frames, bad magic, version mismatches —
  is answered with an error frame and cannot wedge or crash the server;
* a client disconnecting mid-request drains cleanly and leaves the server
  fully usable for other connections (concurrency-marked).
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from repro.core import SimConfig, clear_compile_cache
from repro.core.edits import SetPinDelay
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.serve import (
    DesignRejectedError,
    ServeRequest,
    SimulationServer,
    SimulationService,
    WireClient,
)
from repro.serve.wire import (
    HEADER,
    KIND_ERROR,
    KIND_REQUEST,
    MAGIC,
    FrameTooLargeError,
    ProtocolError,
    decode_error,
    read_frame,
    write_frame,
)
from repro.testing import build_random_netlist, build_random_stimulus

DURATION = 6_000
CONFIG = SimConfig(
    clock_period=500, cycle_parallelism=4, store_waveforms=True
)


@pytest.fixture(autouse=True)
def fresh_compile_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


@pytest.fixture
def served():
    """A running server over a fresh service; yields (service, host, port)."""
    service = SimulationService(max_workers=2, queue_size=32)
    server = SimulationServer(service, host="127.0.0.1", port=0)
    server.start()
    host, port = server.address
    try:
        yield service, host, port
    finally:
        server.close()
        service.close()


def _design(seed: int, num_gates: int = 24):
    netlist = build_random_netlist(num_inputs=5, num_gates=num_gates, seed=seed)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=seed).build(netlist)
    )
    stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 100)
    return netlist, annotation, stimulus


def _request(seed: int, **overrides) -> ServeRequest:
    netlist, annotation, stimulus = _design(seed)
    fields = dict(
        netlist=netlist,
        stimulus=stimulus,
        backend="gatspi",
        annotation=annotation,
        config=CONFIG,
        duration=DURATION,
    )
    fields.update(overrides)
    return ServeRequest(**fields)


def _assert_results_bit_identical(reference, candidate, label):
    assert candidate.toggle_counts == reference.toggle_counts, label
    assert set(candidate.waveforms) == set(reference.waveforms), label
    for net, wave in reference.waveforms.items():
        assert np.array_equal(
            candidate.waveforms[net].data, wave.data
        ), f"{label}: waveform {net!r}"


# ----------------------------------------------------------------------
# Bit-identity: wire vs in-process
# ----------------------------------------------------------------------
class TestWireBitIdentity:
    def test_full_request_bit_identical_to_in_process(self, served):
        service, host, port = served
        request = _request(21)
        in_process = service.run(request)
        with WireClient(host, port) as client:
            over_wire = client.run(request)
        assert over_wire.session_key == in_process.session_key
        assert over_wire.backend == in_process.backend
        _assert_results_bit_identical(
            in_process.result, over_wire.result, "full request"
        )

    def test_delta_request_bit_identical_to_in_process(self, served):
        service, host, port = served
        base_request = _request(22)
        netlist = base_request.netlist
        gate = next(
            instance for instance in netlist.instances.values()
            if instance.cell.inputs
        )
        edits = (
            SetPinDelay(
                gate=gate.name, pin=gate.cell.inputs[0], rise=11.0, fall=13.0
            ),
        )
        with WireClient(host, port) as client:
            base = client.run(base_request)
            delta = ServeRequest(
                base_key=base.session_key,
                edits=edits,
                stimulus=base_request.stimulus,
                duration=DURATION,
                tag="wire-eco",
            )
            over_wire = client.run(delta)
        in_process = service.run(
            ServeRequest(
                base_key=base.session_key,
                edits=edits,
                stimulus=base_request.stimulus,
                duration=DURATION,
            )
        )
        assert over_wire.tag == "wire-eco"
        _assert_results_bit_identical(
            in_process.result, over_wire.result, "delta request"
        )

    def test_stats_surface_over_the_wire(self, served):
        service, host, port = served
        with WireClient(host, port) as client:
            client.run(_request(23))
            stats = client.stats()
        assert stats["completed"] >= 1
        assert stats["run_seconds_total"] > 0.0
        assert stats == service.stats()


# ----------------------------------------------------------------------
# Structured errors
# ----------------------------------------------------------------------
class TestWireErrors:
    def test_design_rejection_carries_the_report(self, served):
        _, host, port = served
        # An undriven floating output is an ERROR-severity finding; under
        # analysis="strict" admission must reject it over the wire with
        # the same exception class and an attached report.
        from repro.netlist import Netlist

        bad_netlist = Netlist("wire-floatout")
        bad_netlist.add_input("a")
        bad_netlist.add_output("y")
        bad_netlist.add_output("z")
        bad_netlist.add_instance("INV", "u0", {"A": "a", "Y": "y"})
        bad_stimulus = build_random_stimulus(bad_netlist, DURATION, seed=99)
        with WireClient(host, port) as client:
            with pytest.raises(DesignRejectedError) as excinfo:
                client.run(
                    ServeRequest(
                        netlist=bad_netlist,
                        stimulus=bad_stimulus,
                        config=CONFIG.with_updates(analysis="strict"),
                        duration=DURATION,
                    )
                )
        assert excinfo.value.report is not None
        assert excinfo.value.report.has_errors

    def test_malformed_request_payload_answers_with_protocol_error(self, served):
        _, host, port = served
        with socket.create_connection((host, port), timeout=10) as sock:
            write_frame(sock, KIND_REQUEST, {"op": "run", "request": "nonsense"})
            kind, payload = read_frame(sock)
        assert kind == KIND_ERROR
        assert isinstance(decode_error(payload), ProtocolError)

    def test_unknown_op_answers_with_protocol_error(self, served):
        _, host, port = served
        with socket.create_connection((host, port), timeout=10) as sock:
            write_frame(sock, KIND_REQUEST, {"op": "reboot"})
            kind, payload = read_frame(sock)
        assert kind == KIND_ERROR
        assert isinstance(decode_error(payload), ProtocolError)

    def test_version_mismatch_rejected(self, served):
        _, host, port = served
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(struct.pack(">2sBBI", MAGIC, 99, KIND_REQUEST, 0))
            kind, payload = read_frame(sock)
        assert kind == KIND_ERROR
        assert isinstance(decode_error(payload), ProtocolError)


# ----------------------------------------------------------------------
# Robustness (concurrency-marked)
# ----------------------------------------------------------------------
@pytest.mark.concurrency
class TestWireRobustness:
    def test_parallel_clients_each_get_their_own_results(self, served):
        """N concurrent connections, distinct designs, zero cross-talk."""
        service, host, port = served
        seeds = [31, 32, 33, 34]
        references = {
            seed: service.run(_request(seed)).result for seed in seeds
        }
        results = {}
        errors = []

        def worker(seed):
            try:
                with WireClient(host, port) as client:
                    results[seed] = client.run(_request(seed)).result
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((seed, exc))

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in seeds
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        for seed in seeds:
            _assert_results_bit_identical(
                references[seed], results[seed], f"client seed={seed}"
            )

    def test_oversized_frame_rejected_before_payload_read(self):
        """A header declaring a huge frame draws an error, not a buffer."""
        service = SimulationService(max_workers=1, queue_size=4)
        server = SimulationServer(
            service, host="127.0.0.1", port=0, max_frame_bytes=4096
        )
        server.start()
        host, port = server.address
        try:
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(
                    HEADER.pack(MAGIC, 1, KIND_REQUEST, 512 * 1024 * 1024)
                )
                kind, payload = read_frame(sock)
                assert kind == KIND_ERROR
                assert isinstance(decode_error(payload), FrameTooLargeError)
                # The connection is closed after a protocol poison: the
                # next read sees EOF, not a hung server.
                assert sock.recv(1) == b""
            # The server survives and serves fresh connections.
            with WireClient(host, port) as client:
                assert client.stats()["completed"] == 0
        finally:
            server.close()
            service.close()

    def test_oversized_send_rejected_client_side(self, served):
        _, host, port = served
        with WireClient(host, port, max_frame_bytes=1024) as client:
            with pytest.raises(FrameTooLargeError):
                client.run(_request(35))

    def test_mid_request_disconnect_drains_cleanly(self, served):
        """A client dying mid-frame or mid-run never wedges the server.

        Two disconnect shapes: (a) a truncated frame — header promises
        more bytes than ever arrive; (b) a full request whose client
        hangs up before reading the response.  Both handlers must drain,
        submitted work must still complete, and other connections must
        keep working.
        """
        service, host, port = served
        # (a) truncated frame: declare 4096 payload bytes, send 10, die.
        sock = socket.create_connection((host, port), timeout=10)
        sock.sendall(HEADER.pack(MAGIC, 1, KIND_REQUEST, 4096) + b"x" * 10)
        sock.close()
        # (b) full request, disconnect before the response arrives.
        request = _request(36)
        sock = socket.create_connection((host, port), timeout=10)
        write_frame(sock, KIND_REQUEST, {"op": "run", "request": request})
        sock.close()
        # The abandoned run completes in the service; a healthy client
        # observes it through stats and can still run its own request.
        import time

        deadline = time.time() + 60
        with WireClient(host, port) as client:
            while time.time() < deadline:
                if client.stats()["completed"] >= 1:
                    break
                time.sleep(0.05)
            stats = client.stats()
            assert stats["completed"] >= 1
            assert stats["failed"] == 0
            response = client.run(_request(37))
        assert response.result.duration == DURATION
