"""Tests for the benchmark design generators, suites, and the harness."""

import pytest

from repro.bench import (
    case_by_name,
    designs,
    format_table2,
    representative_cases,
    run_case,
    table2_cases,
)
from repro.core import SimConfig
from repro.netlist import levelize, validate_netlist
from repro.core import Waveform
from repro.reference import ZeroDelaySimulator


class TestAdder:
    def test_structure(self):
        netlist = designs.ripple_carry_adder(bits=8)
        assert netlist.gate_count == 8 * 5 + 1
        validate_netlist(netlist).raise_if_fatal()

    def test_adder_is_functionally_correct(self):
        bits = 6
        netlist = designs.ripple_carry_adder(bits=bits)
        simulator = ZeroDelaySimulator(netlist)
        for a_value, b_value, cin in [(5, 9, 0), (63, 1, 0), (21, 42, 1), (0, 0, 1)]:
            stimulus = {}
            for bit in range(bits):
                stimulus[f"a[{bit}]"] = Waveform.constant((a_value >> bit) & 1)
                stimulus[f"b[{bit}]"] = Waveform.constant((b_value >> bit) & 1)
            stimulus["cin"] = Waveform.constant(cin)
            result = simulator.simulate(stimulus, duration=10)
            total = 0
            for bit in range(bits):
                total |= result.waveforms[f"sum[{bit}]"].value_at(5) << bit
            total |= result.waveforms["cout"].value_at(5) << bits
            assert total == a_value + b_value + cin

    def test_carry_select_adder_builds(self):
        netlist = designs.carry_select_adder(bits=8, block=4)
        validate_netlist(netlist).raise_if_fatal()
        assert netlist.gate_count > 8 * 5


class TestMultiplierAndNvdla:
    def test_multiplier_structure(self):
        netlist = designs.array_multiplier(bits=4)
        validate_netlist(netlist).raise_if_fatal()
        levels = levelize(netlist)
        assert levels.depth >= 4  # deep reduction tree => glitch prone

    def test_nvdla_block_has_sequential_boundary(self):
        netlist = designs.nvdla_like_mac_block(macs=2, data_bits=3)
        assert netlist.sequential_count > 0
        assert netlist.gate_count > 50
        validate_netlist(netlist).raise_if_fatal()
        # Registered inputs become pseudo-primary inputs.
        assert len(netlist.source_nets()) > len(netlist.inputs)

    def test_nvdla_scales_with_macs(self):
        small = designs.nvdla_like_mac_block(macs=2, data_bits=3)
        large = designs.nvdla_like_mac_block(macs=6, data_bits=3)
        assert large.gate_count > 2 * small.gate_count


class TestIndustryLike:
    def test_reproducible_and_valid(self):
        first = designs.industry_like(gate_count=300, num_flops=40, seed=3)
        second = designs.industry_like(gate_count=300, num_flops=40, seed=3)
        assert first.gate_count == second.gate_count
        assert first.cell_histogram() == second.cell_histogram()
        validate_netlist(first).raise_if_fatal()

    def test_gate_count_close_to_target(self):
        netlist = designs.industry_like(gate_count=500, num_flops=50, seed=1)
        assert 500 <= netlist.gate_count <= 560  # + output buffers

    def test_depth_parameter_controls_levels(self):
        shallow = designs.industry_like(gate_count=300, num_flops=30, depth=6, seed=2)
        deep = designs.industry_like(gate_count=300, num_flops=30, depth=30, seed=2)
        assert levelize(deep).depth > levelize(shallow).depth


class TestSuite:
    def test_table2_has_twelve_cases(self):
        cases = table2_cases()
        assert len(cases) == 12
        names = {case.name for case in cases}
        assert "32b_int_adder" in names
        assert "Industry Design B" in names
        for case in cases:
            assert case.paper is not None
            assert case.paper.kernel_speedup > 1

    def test_representative_cases(self):
        cases = representative_cases()
        assert len(cases) == 3
        assert cases[0].name == "Industry Design A"

    def test_case_lookup(self):
        case = case_by_name("32b_int_adder")
        assert case.stimulus_kind == "random"
        with pytest.raises(KeyError):
            case_by_name("nonexistent")

    def test_paper_speedups_follow_activity_trend(self):
        """In Table 2, the largest kernel speedups come from the long
        high-activity testbenches."""
        cases = {(c.name, c.testbench): c.paper for c in table2_cases()}
        high = cases[("Industry Design B", "high activity long test")]
        low = cases[("NVDLA(large)", "sanity test")]
        assert high.kernel_speedup > low.kernel_speedup


class TestHarness:
    def test_run_case_small_adder(self):
        case = case_by_name("32b_int_adder")
        # Shrink the workload so the harness test stays fast.
        small = type(case)(
            name=case.name,
            testbench=case.testbench,
            design_factory=lambda: designs.ripple_carry_adder(bits=8),
            stimulus_kind="random",
            cycles=30,
            activity_factor=1.0,
            seed=1,
            paper=case.paper,
        )
        artifacts = run_case(small, config=SimConfig(cycle_parallelism=4))
        row = artifacts.row
        assert row.saif_match, artifacts.gatspi_result.differing_nets(
            artifacts.reference_result
        )
        assert row.gate_count == artifacts.netlist.gate_count
        assert row.gatspi_kernel_s > 0
        assert row.modeled_kernel_speedup > 1
        text = format_table2([row])
        assert "32b_int_adder" in text
