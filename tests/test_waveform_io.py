"""Tests for VCD, SAIF, and stimulus generation."""

import pytest

from repro.core import GatspiEngine, SimConfig, Waveform
from repro.netlist import NetlistBuilder
from repro.sdf import UnitDelayModel, annotation_from_design_delays
from repro.waveforms import (
    NetActivity,
    TestbenchSpec,
    activity_from_result,
    clock_waveform,
    functional_stimulus,
    measured_activity_factor,
    parse_saif,
    parse_vcd,
    random_stimulus,
    saif_files_match,
    saif_from_result,
    scan_stimulus,
    stimulus_for_netlist,
    write_saif,
    write_vcd,
)


class TestVcd:
    def test_round_trip(self):
        waves = {
            "a": Waveform.from_initial_and_toggles(0, [10, 25, 60]),
            "b": Waveform.from_initial_and_toggles(1, [40]),
            "quiet": Waveform.constant(0),
        }
        text = write_vcd(waves, end_time=100)
        parsed = parse_vcd(text)
        assert set(parsed) == set(waves)
        for name, wave in waves.items():
            assert parsed[name].toggle_count() == wave.toggle_count()
            for probe in range(0, 100, 5):
                assert parsed[name].value_at(probe) == wave.value_at(probe)

    def test_x_values_map_to_zero(self):
        text = (
            "$timescale 1ps $end\n$scope module top $end\n"
            "$var wire 1 ! sig $end\n$upscope $end\n$enddefinitions $end\n"
            "$dumpvars\nx!\n$end\n#10\n1!\n"
        )
        parsed = parse_vcd(text)
        assert parsed["sig"].value_at(0) == 0
        assert parsed["sig"].value_at(11) == 1

    def test_vector_signals_rejected(self):
        text = (
            "$var wire 8 ! bus [7:0] $end\n$enddefinitions $end\n#0\n"
        )
        with pytest.raises(Exception):
            parse_vcd(text)


class TestSaif:
    def build_result(self):
        builder = NetlistBuilder("saif_test")
        a = builder.input("a")
        builder.output("y")
        builder.gate("INV", [a], output_net="y", name="u0")
        netlist = builder.build()
        annotation = annotation_from_design_delays(
            netlist, UnitDelayModel(delay=5).build(netlist)
        )
        stimulus = {"a": Waveform.from_initial_and_toggles(0, [100, 300, 500])}
        engine = GatspiEngine(netlist, annotation=annotation,
                              config=SimConfig(clock_period=100))
        return engine.simulate(stimulus, cycles=10)

    def test_activity_from_result(self):
        result = self.build_result()
        activities = activity_from_result(result)
        assert activities["a"].tc == 3
        assert activities["y"].tc == 3
        assert activities["a"].t0 + activities["a"].t1 == result.duration

    def test_saif_round_trip_and_match(self):
        result = self.build_result()
        text = saif_from_result(result, design="saif_test")
        parsed = parse_saif(text)
        assert parsed.duration == result.duration
        assert parsed.toggle_counts()["y"] == result.toggle_counts["y"]
        assert saif_files_match(parsed, parsed)

    def test_saif_mismatch_detected(self):
        first = parse_saif(write_saif({"n": NetActivity(10, 10, 4)}, duration=20))
        second = parse_saif(write_saif({"n": NetActivity(10, 10, 5)}, duration=20))
        assert not saif_files_match(first, second)

    def test_static_probability(self):
        activity = NetActivity(t0=25, t1=75, tc=10)
        assert activity.static_probability == pytest.approx(0.75)
        assert activity.toggle_rate(100) == pytest.approx(0.1)


class TestStimulus:
    def test_clock_waveform_period(self):
        clock = clock_waveform(cycles=4, period=100)
        assert clock.toggle_count() == 7  # toggles every half period
        assert clock.value_at(60) == 1
        assert clock.value_at(120) == 0

    def test_random_stimulus_activity(self):
        nets = [f"n{i}" for i in range(20)]
        stimulus = random_stimulus(nets, cycles=200, toggle_probability=1.0, seed=3)
        factor = measured_activity_factor(stimulus, 200)
        assert factor == pytest.approx(1.0, abs=0.02)

    def test_scan_stimulus_is_high_activity(self):
        nets = [f"n{i}" for i in range(10)]
        stimulus = scan_stimulus(nets, cycles=100, seed=3)
        assert measured_activity_factor(stimulus, 100) > 0.8

    def test_functional_stimulus_hits_target_activity(self):
        nets = [f"n{i}" for i in range(30)]
        stimulus = functional_stimulus(nets, cycles=400, activity_factor=0.05, seed=9)
        factor = measured_activity_factor(stimulus, 400)
        assert 0.01 < factor < 0.15

    def test_stimulus_for_netlist_covers_sources_and_clocks(self):
        builder = NetlistBuilder("stim")
        d = builder.input("d")
        clk = builder.input("clk")
        q = builder.flop(d, clk)
        builder.output("y")
        builder.gate("INV", [q], output_net="y")
        netlist = builder.build()
        spec = TestbenchSpec(name="t", cycles=50, activity_factor=0.2, seed=4)
        stimulus = stimulus_for_netlist(netlist, spec, kind="functional")
        assert set(stimulus) >= set(netlist.source_nets())
        # The clock runs every cycle.
        assert stimulus["clk"].toggle_count() >= 50

    def test_unknown_kind_rejected(self):
        builder = NetlistBuilder("stim2")
        builder.input("a")
        builder.output("y")
        builder.gate("BUF", ["a"], output_net="y")
        spec = TestbenchSpec(name="t", cycles=10)
        with pytest.raises(ValueError):
            stimulus_for_netlist(builder.build(), spec, kind="bogus")

    def test_toggle_probability_validated(self):
        with pytest.raises(ValueError):
            random_stimulus(["a"], cycles=10, toggle_probability=1.5)
