"""Tests for VCD, SAIF, and stimulus generation."""

import pytest

from repro.core import GatspiEngine, SimConfig, Waveform
from repro.netlist import NetlistBuilder
from repro.sdf import UnitDelayModel, annotation_from_design_delays
from repro.waveforms import (
    NetActivity,
    TestbenchSpec,
    activity_from_result,
    clock_waveform,
    functional_stimulus,
    measured_activity_factor,
    parse_saif,
    parse_vcd,
    random_stimulus,
    saif_files_match,
    saif_from_result,
    scan_stimulus,
    stimulus_for_netlist,
    write_saif,
    write_vcd,
)


class TestVcd:
    def test_round_trip(self):
        waves = {
            "a": Waveform.from_initial_and_toggles(0, [10, 25, 60]),
            "b": Waveform.from_initial_and_toggles(1, [40]),
            "quiet": Waveform.constant(0),
        }
        text = write_vcd(waves, end_time=100)
        parsed = parse_vcd(text)
        assert set(parsed) == set(waves)
        for name, wave in waves.items():
            assert parsed[name].toggle_count() == wave.toggle_count()
            for probe in range(0, 100, 5):
                assert parsed[name].value_at(probe) == wave.value_at(probe)

    def test_x_values_map_to_zero(self):
        text = (
            "$timescale 1ps $end\n$scope module top $end\n"
            "$var wire 1 ! sig $end\n$upscope $end\n$enddefinitions $end\n"
            "$dumpvars\nx!\n$end\n#10\n1!\n"
        )
        parsed = parse_vcd(text)
        assert parsed["sig"].value_at(0) == 0
        assert parsed["sig"].value_at(11) == 1

    def test_vector_signals_rejected(self):
        text = (
            "$var wire 8 ! bus [7:0] $end\n$enddefinitions $end\n#0\n"
        )
        with pytest.raises(Exception):
            parse_vcd(text)

    def test_vector_format_dumps_for_scalar_vars(self):
        """``b<val> <code>`` changes on 1-bit vars must not be dropped.

        Many real tools (Icarus, Verilator, VCS) emit the vector dump form
        even for scalar variables; the parser used to ignore those lines,
        silently leaving the signal a constant 0 (regression).
        """
        text = (
            "$date today $end\n"
            "$timescale 1ps $end\n"
            "$scope module top $end\n"
            "$var wire 1 ! clk $end\n"
            "$var wire 1 \" rst $end\n"
            "$upscope $end\n"
            "$enddefinitions $end\n"
            "$dumpvars\n"
            "b0 !\n"
            "b1 \"\n"
            "$end\n"
            "#5\n"
            "b1 !\n"
            "#10\n"
            "bx \"\n"
            "#15\n"
            "b0 !\n"
        )
        parsed = parse_vcd(text)
        assert parsed["clk"].to_change_list() == [(0, 0), (5, 1), (15, 0)]
        assert parsed["clk"].toggle_count() == 2, "b-format changes were dropped"
        # x maps to 0, mixed with the initial b1.
        assert parsed["rst"].value_at(0) == 1
        assert parsed["rst"].value_at(11) == 0

    def test_mixed_scalar_and_vector_dump_forms(self):
        """Both dump forms for the same var interleave into one waveform."""
        text = (
            "$var wire 1 ! sig $end\n$enddefinitions $end\n"
            "$dumpvars\n0!\n$end\n"
            "#10\nb1 !\n"
            "#20\n0!\n"
            "#30\nb1 !\n"
        )
        parsed = parse_vcd(text)
        assert parsed["sig"].to_change_list() == [(0, 0), (10, 1), (20, 0), (30, 1)]

    def test_duplicate_names_in_different_scopes_stay_separate(self):
        """Two ``$var`` declarations named ``clk`` in different scopes.

        These are distinct signals; merging their changes into one
        interleaved (potentially non-monotonic) list was a regression —
        here the merged list would be [(2,1),(3,1),(12,0),(13,0)], which
        drops the second signal entirely and double-counts edges.
        """
        text = (
            "$timescale 1ps $end\n"
            "$scope module top $end\n"
            "$scope module u0 $end\n"
            "$var wire 1 ! clk $end\n"
            "$upscope $end\n"
            "$scope module u1 $end\n"
            "$var wire 1 \" clk $end\n"
            "$upscope $end\n"
            "$var wire 1 # sel $end\n"
            "$upscope $end\n"
            "$enddefinitions $end\n"
            "$dumpvars\n0!\n0\"\n0#\n$end\n"
            "#2\n1!\n"
            "#3\n1\"\n"
            "#12\n0!\n"
            "#13\n0\"\n"
        )
        parsed = parse_vcd(text)
        assert "top.u0.clk" in parsed and "top.u1.clk" in parsed
        assert "clk" not in parsed
        # Unique names keep their bare form.
        assert "sel" in parsed
        assert parsed["top.u0.clk"].to_change_list() == [(0, 0), (2, 1), (12, 0)]
        assert parsed["top.u1.clk"].to_change_list() == [(0, 0), (3, 1), (13, 0)]

    def test_aliased_code_re_declared_in_another_scope(self):
        """The same identifier code declared twice is one signal (an alias)."""
        text = (
            "$scope module top $end\n"
            "$var wire 1 ! net_a $end\n"
            "$scope module child $end\n"
            "$var wire 1 ! net_a $end\n"
            "$upscope $end\n"
            "$upscope $end\n"
            "$enddefinitions $end\n"
            "#0\n1!\n#7\n0!\n"
        )
        parsed = parse_vcd(text)
        assert set(parsed) == {"net_a"}
        assert parsed["net_a"].to_change_list() == [(0, 1), (7, 0)]


class TestSaif:
    def build_result(self):
        builder = NetlistBuilder("saif_test")
        a = builder.input("a")
        builder.output("y")
        builder.gate("INV", [a], output_net="y", name="u0")
        netlist = builder.build()
        annotation = annotation_from_design_delays(
            netlist, UnitDelayModel(delay=5).build(netlist)
        )
        stimulus = {"a": Waveform.from_initial_and_toggles(0, [100, 300, 500])}
        engine = GatspiEngine(netlist, annotation=annotation,
                              config=SimConfig(clock_period=100))
        return engine.simulate(stimulus, cycles=10)

    def test_activity_from_result(self):
        result = self.build_result()
        activities = activity_from_result(result)
        assert activities["a"].tc == 3
        assert activities["y"].tc == 3
        assert activities["a"].t0 + activities["a"].t1 == result.duration

    def test_saif_round_trip_and_match(self):
        result = self.build_result()
        text = saif_from_result(result, design="saif_test")
        parsed = parse_saif(text)
        assert parsed.duration == result.duration
        assert parsed.toggle_counts()["y"] == result.toggle_counts["y"]
        assert saif_files_match(parsed, parsed)

    def test_saif_mismatch_detected(self):
        first = parse_saif(write_saif({"n": NetActivity(10, 10, 4)}, duration=20))
        second = parse_saif(write_saif({"n": NetActivity(10, 10, 5)}, duration=20))
        assert not saif_files_match(first, second)

    def test_static_probability(self):
        activity = NetActivity(t0=25, t1=75, tc=10)
        assert activity.static_probability == pytest.approx(0.75)
        assert activity.toggle_rate(100) == pytest.approx(0.1)


class TestStimulus:
    def test_clock_waveform_period(self):
        clock = clock_waveform(cycles=4, period=100)
        assert clock.toggle_count() == 7  # toggles every half period
        assert clock.value_at(60) == 1
        assert clock.value_at(120) == 0

    def test_random_stimulus_activity(self):
        nets = [f"n{i}" for i in range(20)]
        stimulus = random_stimulus(nets, cycles=200, toggle_probability=1.0, seed=3)
        factor = measured_activity_factor(stimulus, 200)
        assert factor == pytest.approx(1.0, abs=0.02)

    def test_scan_stimulus_is_high_activity(self):
        nets = [f"n{i}" for i in range(10)]
        stimulus = scan_stimulus(nets, cycles=100, seed=3)
        assert measured_activity_factor(stimulus, 100) > 0.8

    def test_functional_stimulus_hits_target_activity(self):
        nets = [f"n{i}" for i in range(30)]
        stimulus = functional_stimulus(nets, cycles=400, activity_factor=0.05, seed=9)
        factor = measured_activity_factor(stimulus, 400)
        assert 0.01 < factor < 0.15

    def test_stimulus_for_netlist_covers_sources_and_clocks(self):
        builder = NetlistBuilder("stim")
        d = builder.input("d")
        clk = builder.input("clk")
        q = builder.flop(d, clk)
        builder.output("y")
        builder.gate("INV", [q], output_net="y")
        netlist = builder.build()
        spec = TestbenchSpec(name="t", cycles=50, activity_factor=0.2, seed=4)
        stimulus = stimulus_for_netlist(netlist, spec, kind="functional")
        assert set(stimulus) >= set(netlist.source_nets())
        # The clock runs every cycle.
        assert stimulus["clk"].toggle_count() >= 50

    def test_unknown_kind_rejected(self):
        builder = NetlistBuilder("stim2")
        builder.input("a")
        builder.output("y")
        builder.gate("BUF", ["a"], output_net="y")
        spec = TestbenchSpec(name="t", cycles=10)
        with pytest.raises(ValueError):
            stimulus_for_netlist(builder.build(), spec, kind="bogus")

    def test_toggle_probability_validated(self):
        with pytest.raises(ValueError):
            random_stimulus(["a"], cycles=10, toggle_probability=1.5)
