"""Out-of-core streaming replay: chunk pipeline vs whole-run oracle.

The streaming contract is **bit-identity with less memory**: a
``Session.run_stream`` over any chunking must produce exactly the per-net
toggle counts and SAIF activity of one whole-run ``run`` followed by
``activity_from_result`` — the only thing a streamed run gives up is the
full waveforms.  The tests here hold that contract across backends
(``gatspi``, ``gatspi-sharded`` thread and process workers), devices,
stimulus shapes (generic, window-boundary, sparse), and stimulus sources
(in-memory mappings and incremental VCD streams), then unit-test the two
load-bearing internals on their own:

* :class:`~repro.power.activity.StreamingActivityAccumulator` against a
  ``stitch_windows`` + ``Waveform.duration_at`` oracle, including the
  stitcher's quirky seam rules (dropped establishments, the
  ``continue``-skips-state subtlety, freeze past the horizon) and a
  randomized fuzz over adversarial window decompositions;
* :meth:`~repro.core.memory.WaveformPool.release_windows`, the pool
  recycling that lets one allocation serve every chunk of a run.
"""

from __future__ import annotations

import io
import random

import pytest

from repro.api import get_backend
from repro.core import SimConfig, Waveform, WaveformPool
from repro.core.restructure import stitch_windows
from repro.core.results import SimulationStats, StreamBatch
from repro.core.xp import HOST, available_array_backends
from repro.power.activity import StreamingActivityAccumulator
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.testing import (
    build_boundary_stimulus,
    build_random_netlist,
    build_random_stimulus,
    build_sparse_stimulus,
)
from repro.waveforms.saif import NetActivity, activity_from_result, saif_from_result
from repro.waveforms.vcd import VcdError, VcdEventStream, parse_vcd, read_vcd, write_vcd

DEVICES = available_array_backends()
DURATION = 12_000
#: Small enough that every test run splits into several chunks.
CHUNK_CYCLES = 3


def _design(seed: int, num_inputs: int = 6, num_gates: int = 30):
    netlist = build_random_netlist(
        num_inputs=num_inputs, num_gates=num_gates, seed=seed
    )
    delays = SyntheticDelayModel(seed=seed).build(netlist)
    return netlist, annotation_from_design_delays(netlist, delays)


def _whole_run(netlist, annotation, stimulus, config, duration=DURATION):
    session = get_backend("gatspi").prepare(
        netlist, annotation=annotation, config=config
    )
    return session.run(stimulus, duration=duration)


def _assert_stream_matches(stream_result, reference):
    assert stream_result.toggle_counts == dict(reference.toggle_counts)
    assert stream_result.activities == activity_from_result(reference)
    assert stream_result.saif() == saif_from_result(reference)
    assert stream_result.stats.streamed
    assert stream_result.stats.chunks > 1, "run must actually chunk"
    assert stream_result.stats.input_events == reference.stats.input_events
    assert (
        stream_result.stats.output_transitions
        == reference.stats.output_transitions
    )


# ----------------------------------------------------------------------
# Streamed vs whole-run bit-identity
# ----------------------------------------------------------------------
class TestStreamedVsWhole:
    @pytest.mark.parametrize("device", DEVICES)
    @pytest.mark.parametrize("seed", range(3))
    def test_gatspi_stream_bit_identical(self, seed, device):
        netlist, annotation = _design(seed)
        stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 40)
        config = SimConfig(cycle_parallelism=4, device=device)
        reference = _whole_run(netlist, annotation, stimulus, config)
        session = get_backend("gatspi").prepare(
            netlist, annotation=annotation, config=config
        )
        streamed = session.run_stream(
            stimulus, duration=DURATION, chunk_cycles=CHUNK_CYCLES
        )
        _assert_stream_matches(streamed, reference)

    @pytest.mark.parametrize("seed", range(2))
    def test_sharded_thread_stream_bit_identical(self, seed):
        netlist, annotation = _design(seed)
        stimulus = build_random_stimulus(netlist, DURATION, seed=seed + 41)
        config = SimConfig(cycle_parallelism=4)
        reference = _whole_run(netlist, annotation, stimulus, config)
        session = get_backend("gatspi-sharded").prepare(
            netlist, annotation=annotation, config=config, shards=3, workers=3
        )
        streamed = session.run_stream(
            stimulus, duration=DURATION, chunk_cycles=CHUNK_CYCLES
        )
        _assert_stream_matches(streamed, reference)
        assert streamed.stats.shards == 3

    def test_sharded_process_stream_bit_identical(self):
        netlist, annotation = _design(7, num_gates=20)
        stimulus = build_random_stimulus(netlist, DURATION, seed=48)
        config = SimConfig(cycle_parallelism=4)
        reference = _whole_run(netlist, annotation, stimulus, config)
        session = get_backend("gatspi-sharded").prepare(
            netlist, annotation=annotation, config=config,
            shards=2, workers="process:2",
        )
        try:
            streamed = session.run_stream(
                stimulus, duration=DURATION, chunk_cycles=CHUNK_CYCLES
            )
        finally:
            session.close()
        _assert_stream_matches(streamed, reference)

    @pytest.mark.parametrize("seed", range(2))
    def test_window_boundary_events_streamed(self, seed):
        """Events on/±1 around every window edge survive chunking."""
        netlist, annotation = _design(seed)
        config = SimConfig(cycle_parallelism=4)
        window_length = CHUNK_CYCLES * config.clock_period // config.cycle_parallelism
        stimulus = build_boundary_stimulus(
            netlist, DURATION, window_length, seed=seed
        )
        reference = _whole_run(netlist, annotation, stimulus, config)
        session = get_backend("gatspi").prepare(
            netlist, annotation=annotation, config=config
        )
        streamed = session.run_stream(
            stimulus, duration=DURATION, chunk_cycles=CHUNK_CYCLES
        )
        _assert_stream_matches(streamed, reference)

    def test_sparse_stimulus_streamed(self):
        """Chunks with no events at all keep seam state parked correctly."""
        netlist, annotation = _design(4)
        stimulus = build_sparse_stimulus(netlist, DURATION, seed=4)
        config = SimConfig(cycle_parallelism=4)
        reference = _whole_run(netlist, annotation, stimulus, config)
        session = get_backend("gatspi").prepare(
            netlist, annotation=annotation, config=config
        )
        streamed = session.run_stream(
            stimulus, duration=DURATION, chunk_cycles=CHUNK_CYCLES
        )
        _assert_stream_matches(streamed, reference)

    def test_chunking_invariance(self):
        """Every chunk size gives byte-identical results."""
        netlist, annotation = _design(2)
        stimulus = build_random_stimulus(netlist, DURATION, seed=11)
        config = SimConfig(cycle_parallelism=4)
        session = get_backend("gatspi").prepare(
            netlist, annotation=annotation, config=config
        )
        results = [
            session.run_stream(stimulus, duration=DURATION, chunk_cycles=c)
            for c in (1, 3, 5, 12)
        ]
        for other in results[1:]:
            assert other.toggle_counts == results[0].toggle_counts
            assert other.saif() == results[0].saif()

    def test_iter_windows_yields_ordered_chunks(self):
        netlist, annotation = _design(1)
        stimulus = build_random_stimulus(netlist, DURATION, seed=5)
        session = get_backend("gatspi").prepare(
            netlist, annotation=annotation, config=SimConfig(cycle_parallelism=4)
        )
        batches = list(
            session.iter_windows(stimulus, duration=DURATION, chunk_cycles=CHUNK_CYCLES)
        )
        assert [b.chunk_index for b in batches] == list(range(len(batches)))
        assert batches[0].chunk_start == 0
        assert batches[-1].chunk_end == DURATION
        for first, second in zip(batches, batches[1:]):
            assert second.chunk_start == first.chunk_end

    def test_stream_pool_is_recycled_across_chunks_and_runs(self):
        """One persistent pool serves every chunk (and every later run)."""
        netlist, annotation = _design(3)
        stimulus = build_random_stimulus(netlist, DURATION, seed=8)
        session = get_backend("gatspi").prepare(
            netlist, annotation=annotation, config=SimConfig(cycle_parallelism=4)
        )
        session.run_stream(stimulus, duration=DURATION, chunk_cycles=CHUNK_CYCLES)
        pool = session.engine._stream_pool
        assert pool is not None
        session.run_stream(stimulus, duration=DURATION, chunk_cycles=CHUNK_CYCLES)
        assert session.engine._stream_pool is pool

    def test_refusals(self):
        netlist, annotation = _design(0)
        stimulus = build_random_stimulus(netlist, DURATION, seed=1)
        pinned = SimConfig(cycle_parallelism=4, window_overlap=5)
        session = get_backend("gatspi").prepare(
            netlist, annotation=annotation, config=pinned
        )
        with pytest.raises(ValueError):
            session.run_stream(stimulus, duration=DURATION)
        event = get_backend("event").prepare(netlist, annotation=annotation)
        with pytest.raises(NotImplementedError):
            event.run_stream(stimulus, duration=DURATION)


# ----------------------------------------------------------------------
# VCD as a streaming stimulus source
# ----------------------------------------------------------------------
class TestVcdStreaming:
    def _stimulus_vcd(self, netlist, seed=21):
        stimulus = build_random_stimulus(netlist, DURATION, seed=seed)
        return stimulus, write_vcd(stimulus, end_time=DURATION)

    def test_vcd_stream_matches_in_memory_run(self, tmp_path):
        netlist, annotation = _design(5)
        stimulus, text = self._stimulus_vcd(netlist)
        path = tmp_path / "stim.vcd"
        path.write_text(text)
        session = get_backend("gatspi").prepare(
            netlist, annotation=annotation, config=SimConfig(cycle_parallelism=4)
        )
        expected = session.run_stream(
            stimulus, duration=DURATION, chunk_cycles=CHUNK_CYCLES
        )
        with VcdEventStream(str(path)) as stream:
            streamed = session.run_stream(
                stream, duration=DURATION, chunk_cycles=CHUNK_CYCLES
            )
        assert streamed.toggle_counts == expected.toggle_counts
        assert streamed.saif() == expected.saif()

    def test_read_vcd_matches_parse_vcd(self, tmp_path):
        netlist, _ = _design(6)
        _, text = self._stimulus_vcd(netlist, seed=22)
        path = tmp_path / "whole.vcd"
        path.write_text(text)
        assert read_vcd(str(path)) == parse_vcd(text)

    def test_truncated_dump_streams_like_parse(self):
        """A dump cut mid-run serves exactly the prefix both ways."""
        netlist, _ = _design(6)
        _, text = self._stimulus_vcd(netlist, seed=23)
        lines = text.splitlines(keepends=True)
        truncated = "".join(lines[: int(len(lines) * 0.6)])
        reference = parse_vcd(truncated)
        stream = VcdEventStream(io.StringIO(truncated))
        span = stream.span_events(0, DURATION)
        for i, net in enumerate(span.nets):
            lo, hi = int(span.offsets[i]), int(span.offsets[i + 1])
            toggles = [int(t) for t in span.times[lo:hi] if t < DURATION]
            expected = reference[net]
            assert int(span.initial_values[i]) == expected.value_at(0), net
            # Changes at t <= 0 are establishment, folded into the span's
            # initial value rather than served as toggles.
            assert toggles == [
                t for t in expected.to_list()[1:] if 0 < t < DURATION
            ], net

    def test_garbage_tail_lines_are_ignored(self):
        netlist, _ = _design(6)
        _, text = self._stimulus_vcd(netlist, seed=24)
        polluted = text + "\n\x00\xff not-a-vcd-change\n$comment mid dump $end\n"
        assert parse_vcd(polluted) == parse_vcd(text)

    def test_unbounded_garbage_line_rejected(self):
        blob = "$enddefinitions $end\n" + "\x00" * (1 << 21)
        with pytest.raises(VcdError):
            parse_vcd(blob)

    def test_change_behind_served_frontier_rejected(self):
        # The #150 change is monotonic for net `a` itself but arrives
        # after the [0, 300) span was served as final.
        text = (
            "$scope module top $end\n"
            "$var wire 1 ! a $end\n"
            "$upscope $end\n"
            "$enddefinitions $end\n"
            "#0\n0!\n#300\n#150\n1!\n"
        )
        stream = VcdEventStream(io.StringIO(text))
        stream.span_events(0, 300, retire_before=0)
        with pytest.raises(VcdError):
            stream.span_events(300, 2000)

    def test_non_monotonic_dump_rejected(self):
        from repro.core.waveform import WaveformError

        text = (
            "$scope module top $end\n"
            "$var wire 1 ! a $end\n"
            "$upscope $end\n"
            "$enddefinitions $end\n"
            "#0\n0!\n#500\n1!\n#100\n0!\n"
        )
        stream = VcdEventStream(io.StringIO(text))
        with pytest.raises(WaveformError):
            stream.span_events(0, 2000)

    def test_spans_must_advance_past_retired_frontier(self):
        text = (
            "$scope module top $end\n"
            "$var wire 1 ! a $end\n"
            "$upscope $end\n"
            "$enddefinitions $end\n"
            "#0\n0!\n#50\n1!\n"
        )
        stream = VcdEventStream(io.StringIO(text))
        stream.span_events(0, 100, retire_before=100)
        with pytest.raises(ValueError):
            stream.span_events(0, 100)


# ----------------------------------------------------------------------
# The online accumulator vs the stitcher oracle
# ----------------------------------------------------------------------
def _batch(nets, window_starts, establish, counts, times, *, index=0):
    hnp = HOST
    window_starts = hnp.asarray(window_starts, dtype=hnp.int64)
    return StreamBatch(
        chunk_index=index,
        chunk_start=int(window_starts[0]),
        chunk_end=int(window_starts[-1]) + 1,
        nets=tuple(nets),
        window_starts=window_starts,
        establish_values=hnp.asarray(establish, dtype=hnp.int64),
        toggle_counts=hnp.asarray(counts, dtype=hnp.int64),
        times=hnp.asarray(times, dtype=hnp.int64),
        source_nets=(),
        source_establish=hnp.zeros(0, dtype=hnp.int64),
        source_counts=hnp.zeros(0, dtype=hnp.int64),
        source_times=hnp.zeros(0, dtype=hnp.int64),
    )


def _oracle(duration, window_starts, establish, counts, times):
    """Whole-run activity via stitch_windows + Waveform, one net."""
    hnp = HOST
    wave = stitch_windows(
        hnp.asarray(window_starts, dtype=hnp.int64),
        hnp.asarray(establish, dtype=hnp.int64),
        hnp.asarray(counts, dtype=hnp.int64),
        hnp.asarray(times, dtype=hnp.int64),
    )
    t1 = wave.duration_at(1, 0, duration)
    # Like whole-run `toggle_counts`, tc counts every kept transition —
    # only the T0/T1 interval accounting is capped at the horizon.
    tc = wave.toggle_count()
    return NetActivity(t0=duration - t1, t1=t1, tc=tc), tc


class TestStreamingActivityAccumulator:
    def _fold(self, duration, window_starts, establish, counts, times, splits=None):
        """Feed one net's windows through the accumulator, batch by batch."""
        acc = StreamingActivityAccumulator(("n",), duration)
        bounds = [0, len(window_starts)] if splits is None else [0, *splits, len(window_starts)]
        offset = 0
        for k, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
            if hi <= lo:
                continue
            n_times = int(sum(counts[lo:hi]))
            acc.add_batch(
                _batch(
                    ("n",),
                    window_starts[lo:hi],
                    [establish[lo:hi]],
                    [counts[lo:hi]],
                    times[offset : offset + n_times],
                    index=k,
                )
            )
            offset += n_times
        activities = acc.finalize()
        return activities["n"], acc.toggle_counts()["n"]

    def _check(self, duration, window_starts, establish, counts, times, splits=None):
        expected, expected_tc = _oracle(
            duration, window_starts, establish, counts, times
        )
        activity, tc = self._fold(
            duration, window_starts, establish, counts, times, splits
        )
        assert activity == expected
        assert tc == expected_tc

    def test_clean_seams_fast_path(self):
        self._check(400, [0, 100, 200], [0, 1, 0], [1, 1, 1], [10, 150, 250])

    def test_inconsistent_establishment_kept_as_change(self):
        # Window 1 re-establishes 0 against a carried 1: the stitcher keeps
        # the establishment itself as a change at the window start.
        self._check(200, [0, 100], [0, 0], [1, 1], [10, 150])

    def test_duplicate_establishment_dropped(self):
        # Window 1 establishes the carried value: dropped, toggles kept.
        self._check(200, [0, 100], [0, 1], [1, 1], [10, 150])

    def test_stale_toggles_dropped_with_parked_state(self):
        # Window 1's toggles replay the seam (10 <= carried 10); the
        # stitcher drops the whole window *without* advancing seam state
        # (the `continue` subtlety), which also drops the later toggle.
        self._check(300, [0, 100], [0, 1], [1, 2], [10, 10, 150])

    def test_empty_windows_park_seam_state(self):
        self._check(500, [0, 100, 200, 300], [0, 1, 1, 1], [1, 0, 0, 2], [10, 310, 350])

    def test_freeze_past_horizon(self):
        # Toggles beyond the horizon are ignored; T1 closes at `duration`.
        self._check(200, [0, 100], [0, 1], [1, 3], [10, 120, 250, 300])

    def test_batch_split_at_every_seam(self):
        ws = [0, 100, 200, 300]
        est = [0, 1, 0, 1]
        cnt = [1, 1, 1, 1]
        ts = [10, 150, 250, 350]
        for split in ([1], [2], [3], [1, 2], [1, 3], [1, 2, 3]):
            self._check(400, ws, est, cnt, ts, splits=split)

    def test_never_toggling_net_reports_constant_zero(self):
        acc = StreamingActivityAccumulator(("a", "b"), 100)
        acc.add_batch(_batch(("a",), [0], [[0]], [[1]], [10]))
        activities = acc.finalize()
        assert activities["b"] == NetActivity(t0=100, t1=0, tc=0)
        assert acc.toggle_counts() == {"a": 1, "b": 0}

    def test_duplicate_nets_rejected(self):
        with pytest.raises(ValueError):
            StreamingActivityAccumulator(("a", "a"), 100)

    def test_unknown_batch_net_rejected(self):
        acc = StreamingActivityAccumulator(("a",), 100)
        with pytest.raises(ValueError):
            acc.add_batch(_batch(("zzz",), [0], [[0]], [[0]], []))

    def test_finalize_is_idempotent_and_required(self):
        acc = StreamingActivityAccumulator(("a",), 100)
        with pytest.raises(ValueError):
            acc.activities()
        first = acc.finalize()
        assert acc.finalize() == first

    def test_fuzz_against_stitcher(self):
        """Randomized windows with adversarial seams, splits, and freezes.

        The generator respects the engine's trim invariant (toggles
        strictly increasing within a window and past its start) but is
        otherwise adversarial: establishment values flip randomly across
        seams, toggles overshoot into later windows, horizons cut runs
        short, and batches split at random seams.
        """
        rng = random.Random(1234)
        for trial in range(300):
            W = rng.randint(1, 6)
            starts, t = [], 0
            for _ in range(W):
                starts.append(t)
                t += rng.randint(20, 120)
            span_end = t + rng.randint(20, 120)
            establish, counts, times = [], [], []
            for w, ws in enumerate(starts):
                establish.append(rng.randint(0, 1))
                k = rng.randint(0, 4)
                limit = span_end if rng.random() < 0.3 else starts[w + 1] if w + 1 < W else span_end
                pool = sorted(rng.sample(range(ws + 1, max(ws + 2, limit + 60)), k)) if k else []
                counts.append(len(pool))
                times.extend(pool)
            duration = rng.randint(starts[-1] + 1, span_end + 60)
            n_splits = rng.randint(0, min(3, W - 1))
            splits = sorted(rng.sample(range(1, W), n_splits)) if n_splits else None
            self._check(duration, starts, establish, counts, times, splits)


# ----------------------------------------------------------------------
# Pool recycling (release_windows)
# ----------------------------------------------------------------------
class TestReleaseWindows:
    def _wave(self, initial, toggles):
        return Waveform.from_initial_and_toggles(initial, toggles)

    def test_release_all_rewinds_allocator_and_reuses_columns(self):
        pool = WaveformPool(1 << 12)
        null_address = pool.store_padding_waveform()
        first = pool.store_waveform("a", 0, self._wave(0, [5, 9]))
        pool.store_waveform("a", 1, self._wave(1, [7]))
        pool.release_windows()
        assert not pool.has_waveform("a", 0)
        assert not pool.has_waveform("a", 1)
        # The bump allocator rewound: the next chunk's stores land on the
        # exact words the previous chunk used.
        again = pool.store_waveform("a", 2, self._wave(0, [3]))
        assert again == first
        # The canonical null waveform survives both release and rewind.
        assert pool.store_padding_waveform() == null_address

    def test_partial_release_recycles_freed_column_only(self):
        pool = WaveformPool(1 << 12)
        for w in (0, 1, 2):
            pool.store_waveform("a", w, self._wave(0, [10 + w]))
        pool.release_windows([1])
        assert pool.has_waveform("a", 0)
        assert not pool.has_waveform("a", 1)
        assert pool.has_waveform("a", 2)
        pool.store_waveform("a", 3, self._wave(1, [40]))
        assert pool.read_waveform("a", 0) == self._wave(0, [10])
        assert pool.read_waveform("a", 2) == self._wave(0, [12])
        assert pool.read_waveform("a", 3) == self._wave(1, [40])

    def test_release_unknown_windows_is_a_noop(self):
        pool = WaveformPool(1 << 12)
        pool.store_waveform("a", 0, self._wave(0, [4]))
        pool.release_windows([17])
        assert pool.has_waveform("a", 0)
        assert pool.read_waveform("a", 0) == self._wave(0, [4])
