"""Session reuse across segment splits and varying run horizons.

A :class:`~repro.api.session.Session` owns one compiled design and must
serve any number of ``run()`` calls — including runs that overflow the
waveform pool and re-enter through the segment-split path, and runs whose
durations differ call to call.  These seams were previously untested and
are exactly the state the bulk restructure/load pipeline must not leak
between runs (the stimulus event tensors are lowered per run; the packed
design tensors and pool configuration are per session).
"""

from __future__ import annotations

import pytest

from repro.api import get_backend
from repro.core import SimConfig
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.testing import build_random_netlist, build_random_stimulus


@pytest.fixture(scope="module")
def design():
    netlist = build_random_netlist(num_inputs=5, num_gates=28, seed=21)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=21).build(netlist)
    )
    return netlist, annotation


def _prepare(design, restructure, **config_kwargs):
    netlist, annotation = design
    config = SimConfig(restructure=restructure, **config_kwargs)
    return get_backend("gatspi").prepare(
        netlist, annotation=annotation, config=config
    )


def _fresh_result(design, restructure, stimulus, duration, **config_kwargs):
    """The same run on a fresh session (the no-reuse reference)."""
    session = _prepare(design, restructure, **config_kwargs)
    return session.run(stimulus, duration=duration)


@pytest.mark.parametrize("restructure", ["python", "vector"])
def test_repeated_runs_with_different_durations(design, restructure):
    """One session, many horizons: results match fresh-session runs."""
    netlist, _ = design
    session = _prepare(design, restructure, cycle_parallelism=8)
    durations = [4_000, 20_000, 1_000, 12_000]
    stimulus = build_random_stimulus(netlist, max(durations), seed=33)
    for expected_runs, duration in enumerate(durations, start=1):
        result = session.run(stimulus, duration=duration)
        assert session.runs_completed == expected_runs
        fresh = _fresh_result(
            design, restructure, stimulus, duration, cycle_parallelism=8
        )
        assert result.toggle_counts == fresh.toggle_counts, duration
        for net in fresh.waveforms:
            assert result.waveforms[net] == fresh.waveforms[net], (duration, net)


@pytest.mark.parametrize("restructure", ["python", "vector"])
def test_session_survives_segment_splits(design, restructure):
    """Pool overflow inside ``run()`` must not poison later runs.

    The first run's pool is too small for its windows, forcing the
    segment-split path; a subsequent (smaller) run on the same session
    must still match a fresh session bit-for-bit, and vice versa.
    """
    netlist, _ = design
    session = _prepare(
        design, restructure, cycle_parallelism=16, device_memory_gb=2e-5
    )
    stimulus = build_random_stimulus(netlist, 24_000, seed=34)

    split_result = session.run(stimulus, duration=24_000)
    assert split_result.stats.segments > 1, "run must actually split"
    small_result = session.run(stimulus, duration=2_000)
    split_again = session.run(stimulus, duration=24_000)
    assert session.runs_completed == 3

    fresh_split = _fresh_result(
        design, restructure, stimulus, 24_000,
        cycle_parallelism=16, device_memory_gb=2e-5,
    )
    fresh_small = _fresh_result(
        design, restructure, stimulus, 2_000,
        cycle_parallelism=16, device_memory_gb=2e-5,
    )
    for result, fresh in (
        (split_result, fresh_split),
        (small_result, fresh_small),
        (split_again, fresh_split),
    ):
        assert result.stats.segments == fresh.stats.segments
        assert result.toggle_counts == fresh.toggle_counts
        for net in fresh.waveforms:
            assert result.waveforms[net] == fresh.waveforms[net], net


def test_segment_split_runs_identical_across_pipelines(design):
    """Both restructure pipelines agree on the whole reuse sequence."""
    netlist, _ = design
    stimulus = build_random_stimulus(netlist, 24_000, seed=35)
    results = {}
    for restructure in ("python", "vector"):
        session = _prepare(
            design, restructure, cycle_parallelism=16, device_memory_gb=2e-5
        )
        results[restructure] = [
            session.run(stimulus, duration=24_000),
            session.run(stimulus, duration=6_000),
        ]
    for ref, vec in zip(results["python"], results["vector"]):
        assert ref.toggle_counts == vec.toggle_counts
        assert ref.stats.segments == vec.stats.segments
        for net in ref.waveforms:
            assert ref.waveforms[net] == vec.waveforms[net], net


@pytest.mark.parametrize("restructure", ["python", "vector"])
def test_waveforms_survive_pool_reset_between_segments(design, restructure):
    """Returned waveforms stay valid after later runs reuse the session.

    Readback hands out (or gathers from) pool views; a later run must not
    mutate waveforms already returned to the caller.
    """
    netlist, _ = design
    session = _prepare(
        design, restructure, cycle_parallelism=16, device_memory_gb=2e-5
    )
    stimulus = build_random_stimulus(netlist, 24_000, seed=36)
    first = session.run(stimulus, duration=24_000)
    snapshots = {net: wave.to_list() for net, wave in first.waveforms.items()}
    session.run(stimulus, duration=24_000)
    for net, snapshot in snapshots.items():
        assert first.waveforms[net].to_list() == snapshot, net
