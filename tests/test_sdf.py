"""Tests for the SDF parser, writer, and netlist annotation."""

import pytest

from repro.core.delaytable import FALL, RISE
from repro.netlist import NetlistBuilder
from repro.sdf import (
    AnnotationError,
    SdfError,
    SyntheticDelayModel,
    UnitDelayModel,
    annotation_from_design_delays,
    annotation_from_sdf,
    default_annotation,
    parse_condition,
    parse_sdf,
    write_sdf,
)

PAPER_STYLE_SDF = """
(DELAYFILE
  (SDFVERSION "3.0")
  (DESIGN "mini")
  (TIMESCALE 1ps)
  (CELL
    (CELLTYPE "mini")
    (INSTANCE )
    (DELAY
      (ABSOLUTE
        (INTERCONNECT u_nand/Y u_aoi/B (2) (3))
      )
    )
  )
  (CELL
    (CELLTYPE "AOI21")
    (INSTANCE u_aoi)
    (DELAY
      (ABSOLUTE
        (IOPATH A1 Y (10) (11))
        (IOPATH A2 Y (10) (11))
        (IOPATH (posedge B) Y () (6))
        (IOPATH (negedge B) Y (8) ())
        (COND A2===1'b1&&A1===1'b0 (IOPATH (posedge B) Y () (5)))
        (COND A2===1'b1&&A1===1'b0 (IOPATH (negedge B) Y (7) ()))
      )
    )
  )
)
"""


def build_mini_netlist():
    builder = NetlistBuilder("mini")
    a = builder.input("a")
    b = builder.input("b")
    c = builder.input("c")
    n1 = builder.gate("NAND2", [a, b], name="u_nand")
    builder.output("y")
    builder.gate("AOI21", [a, c, n1], output_net="y", name="u_aoi")
    return builder.build()


class TestParser:
    def test_parse_paper_style_file(self):
        sdf = parse_sdf(PAPER_STYLE_SDF)
        assert sdf.design == "mini"
        assert len(sdf.cells) == 1
        cell = sdf.cells[0]
        assert cell.instance == "u_aoi"
        assert cell.cell_type == "AOI21"
        assert len(cell.iopaths) == 6
        assert sdf.conditional_iopath_count() == 2
        assert len(sdf.all_interconnects()) == 1

    def test_conditional_edges_and_empty_fields(self):
        sdf = parse_sdf(PAPER_STYLE_SDF)
        conditional = [p for p in sdf.cells[0].iopaths if p.is_conditional]
        posedge = next(p for p in conditional if p.input_edge == "posedge")
        assert posedge.rise is None and posedge.fall == 5
        negedge = next(p for p in conditional if p.input_edge == "negedge")
        assert negedge.rise == 7 and negedge.fall is None

    def test_parse_condition_expression(self):
        assert parse_condition("A2===1'b1&&A1===1'b0") == {"A2": 1, "A1": 0}
        assert parse_condition("") == {}
        with pytest.raises(SdfError):
            parse_condition("A||B")

    def test_delay_triples_use_typical(self):
        sdf = parse_sdf(
            '(DELAYFILE (CELL (CELLTYPE "INV") (INSTANCE u0)'
            " (DELAY (ABSOLUTE (IOPATH A Y (1:2:3) (4:5:6))))))"
        )
        path = sdf.cells[0].iopaths[0]
        assert path.rise == 2 and path.fall == 5

    def test_single_value_applies_to_both_edges(self):
        sdf = parse_sdf(
            '(DELAYFILE (CELL (CELLTYPE "INV") (INSTANCE u0)'
            " (DELAY (ABSOLUTE (IOPATH A Y (9))))))"
        )
        path = sdf.cells[0].iopaths[0]
        assert path.rise == 9 and path.fall == 9

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(SdfError):
            parse_sdf("(DELAYFILE (CELL")

    def test_requires_delayfile(self):
        with pytest.raises(SdfError):
            parse_sdf("(NOTSDF)")


class TestAnnotation:
    def test_annotation_from_sdf(self):
        netlist = build_mini_netlist()
        sdf = parse_sdf(PAPER_STYLE_SDF)
        annotation = annotation_from_sdf(netlist, sdf)
        table = annotation.table_for("u_aoi")
        # Fig. 4 layout: COND A2=1, A1=0 selects column A1*4 + A2*2 + B*w.
        matching_column = 2
        assert table.lookup("B", RISE, FALL, matching_column) == 5
        assert table.lookup("B", RISE, FALL, 4 + 2) == 6
        assert table.lookup("B", FALL, RISE, matching_column) == 7
        wire = annotation.wire_delay("u_aoi", "B")
        assert (wire.rise, wire.fall) == (2, 3)
        # The NAND has no SDF entry and falls back to intrinsic delays.
        nand_table = annotation.table_for("u_nand")
        assert nand_table.max_finite_delay() > 0

    def test_strict_mode_rejects_unknown_instance(self):
        netlist = build_mini_netlist()
        sdf = parse_sdf(
            '(DELAYFILE (CELL (CELLTYPE "INV") (INSTANCE nope)'
            " (DELAY (ABSOLUTE (IOPATH A Y (1))))))"
        )
        with pytest.raises(AnnotationError):
            annotation_from_sdf(netlist, sdf, strict=True)
        annotation = annotation_from_sdf(netlist, sdf, strict=False)
        assert "nope" not in annotation.gate_tables

    def test_ablation_variants(self):
        netlist = build_mini_netlist()
        delays = SyntheticDelayModel(seed=3).build(netlist)
        annotation = annotation_from_design_delays(netlist, delays)
        no_net = annotation.without_net_delays()
        assert not no_net.interconnect
        averaged = annotation.with_averaged_sdf()
        assert set(averaged.gate_tables) == set(annotation.gate_tables)

    def test_default_annotation_covers_all_gates(self):
        netlist = build_mini_netlist()
        annotation = default_annotation(netlist)
        for inst in netlist.combinational_instances():
            if inst.cell.num_inputs:
                assert annotation.table_for(inst.name).max_finite_delay() > 0


class TestWriterRoundTrip:
    def test_write_and_reparse(self):
        netlist = build_mini_netlist()
        delays = SyntheticDelayModel(seed=11, conditional_fraction=1.0).build(netlist)
        text = write_sdf(netlist, delays)
        sdf = parse_sdf(text)
        annotation_direct = annotation_from_design_delays(netlist, delays)
        annotation_via_sdf = annotation_from_sdf(netlist, sdf)
        for name in annotation_direct.gate_tables:
            direct = annotation_direct.table_for(name)
            via_sdf = annotation_via_sdf.table_for(name)
            for pin in direct.pins:
                assert (direct.table_for(pin) == via_sdf.table_for(pin)).all()
        assert annotation_direct.interconnect.keys() >= {
            key for key, wire in annotation_via_sdf.interconnect.items()
        }

    def test_unit_delay_model(self):
        netlist = build_mini_netlist()
        delays = UnitDelayModel(delay=5).build(netlist)
        annotation = annotation_from_design_delays(netlist, delays)
        table = annotation.table_for("u_nand")
        assert table.lookup("A", RISE, RISE, 0) == 5
