"""Tests for power analysis, glitch analysis, and the optimization flow."""

import pytest

from repro.bench import designs
from repro.core import GatspiEngine, SimConfig
from repro.opt import (
    GlitchOptimizationFlow,
    balance_gate_inputs,
    estimate_arrival_times,
    insert_delay_buffer,
)
from repro.power import (
    PowerModel,
    analyze_glitches,
    events_per_gate,
    static_probabilities,
    summarize_activity,
)
from repro.reference import EventDrivenSimulator, ZeroDelaySimulator, functional_toggle_counts
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.waveforms import TestbenchSpec, stimulus_for_netlist

CONFIG = SimConfig(clock_period=1000, cycle_parallelism=4)


@pytest.fixture(scope="module")
def adder_setup():
    netlist = designs.ripple_carry_adder(bits=8)
    delays = SyntheticDelayModel(seed=5, wire_delay_range=(0, 2)).build(netlist)
    annotation = annotation_from_design_delays(netlist, delays)
    spec = TestbenchSpec(name="rand", cycles=40, activity_factor=0.8, seed=5)
    stimulus = stimulus_for_netlist(netlist, spec, kind="random")
    result = GatspiEngine(netlist, annotation=annotation, config=CONFIG).simulate(
        stimulus, cycles=spec.cycles
    )
    return netlist, annotation, stimulus, result, spec


class TestPowerModel:
    def test_power_is_positive_and_composed(self, adder_setup):
        netlist, _, _, result, _ = adder_setup
        report = PowerModel(netlist).compute_from_result(result)
        assert report.total_w > 0
        assert report.total_w == pytest.approx(
            report.switching_w + report.internal_w + report.leakage_w
        )
        assert len(report.per_net) > 0

    def test_power_scales_with_toggles(self, adder_setup):
        netlist, _, _, result, _ = adder_setup
        model = PowerModel(netlist)
        base = model.compute(result.toggle_counts, result.duration)
        doubled = model.compute(
            {net: 2 * count for net, count in result.toggle_counts.items()},
            result.duration,
        )
        assert doubled.dynamic_w == pytest.approx(2 * base.dynamic_w, rel=1e-6)
        assert doubled.leakage_w == pytest.approx(base.leakage_w)

    def test_requires_positive_duration(self, adder_setup):
        netlist, _, _, result, _ = adder_setup
        with pytest.raises(ValueError):
            PowerModel(netlist).compute(result.toggle_counts, 0)

    def test_top_nets_sorted(self, adder_setup):
        netlist, _, _, result, _ = adder_setup
        report = PowerModel(netlist).compute_from_result(result)
        top = report.top_nets(5)
        assert len(top) == 5
        assert all(
            top[i].dynamic_w >= top[i + 1].dynamic_w for i in range(len(top) - 1)
        )


class TestActivity:
    def test_summary_matches_result(self, adder_setup):
        netlist, _, _, result, spec = adder_setup
        summary = summarize_activity(netlist, result, spec.cycles)
        assert summary.gate_count == netlist.gate_count
        assert summary.activity_factor == pytest.approx(result.activity_factor())
        assert summary.total_toggles == result.total_toggles()

    def test_static_probabilities_bounded(self, adder_setup):
        _, _, _, result, _ = adder_setup
        probabilities = static_probabilities(result.waveforms, result.duration)
        assert all(0.0 <= p <= 1.0 for p in probabilities.values())

    def test_events_per_gate(self, adder_setup):
        netlist, _, _, result, _ = adder_setup
        events = events_per_gate(netlist, result)
        assert len(events) == netlist.gate_count
        assert sum(events.values()) == result.stats.input_events


class TestGlitchAnalysis:
    def test_adder_has_glitch_activity(self, adder_setup):
        netlist, _, stimulus, result, _ = adder_setup
        functional = functional_toggle_counts(netlist, stimulus, result.duration)
        report = analyze_glitches(netlist, result, functional)
        assert report.total_glitch_toggles >= 0
        assert 0.0 <= report.glitch_toggle_fraction <= 1.0
        assert report.glitch_power_w <= report.total_power.total_w

    def test_zero_delay_has_no_glitches(self, adder_setup):
        netlist, _, stimulus, result, _ = adder_setup
        functional = ZeroDelaySimulator(netlist).simulate(
            stimulus, duration=result.duration
        )
        report = analyze_glitches(netlist, functional, functional.toggle_counts)
        assert report.total_glitch_toggles == 0

    def test_worst_nets_are_glitchy(self, adder_setup):
        netlist, _, stimulus, result, _ = adder_setup
        functional = functional_toggle_counts(netlist, stimulus, result.duration)
        report = analyze_glitches(netlist, result, functional)
        for info in report.worst_nets(5):
            assert info.glitch_toggles > 0


class TestGlitchFixes:
    def test_arrival_times_monotonic_with_depth(self, adder_setup):
        netlist, annotation, _, _, _ = adder_setup
        arrivals = estimate_arrival_times(netlist, annotation)
        assert arrivals["a[0]"] == 0.0
        # The adder's carry chain makes later sum bits arrive later.
        assert arrivals[netlist.instance("u0").output_net()] > 0

    def test_insert_delay_buffer_preserves_connectivity(self, adder_setup):
        netlist, annotation, _, _, _ = adder_setup
        import copy

        work_netlist = copy.deepcopy(netlist)
        work_annotation = copy.deepcopy(annotation)
        gate = work_netlist.combinational_instances()[5]
        pin = gate.cell.inputs[0]
        original_net = gate.connections[pin]
        buffer_name = insert_delay_buffer(
            work_netlist, work_annotation, gate.name, pin, delay=12
        )
        assert buffer_name in work_netlist.instances
        new_net = gate.connections[pin]
        assert new_net != original_net
        assert work_netlist.nets[new_net].driver == (buffer_name, "Y")
        assert (gate.name, pin) not in [
            load for load in work_netlist.nets[original_net].loads
        ]
        # The buffered netlist still levelizes and simulates.
        from repro.netlist import levelize

        levelize(work_netlist)

    def test_balance_gate_inputs_reduces_skew(self, adder_setup):
        netlist, annotation, _, _, _ = adder_setup
        import copy

        work_netlist = copy.deepcopy(netlist)
        work_annotation = copy.deepcopy(annotation)
        # The last sum XOR has maximally skewed inputs (carry chain vs input).
        target = [
            inst.name
            for inst in work_netlist.combinational_instances()
            if inst.cell_name == "XOR2"
        ][-1]
        fixes = balance_gate_inputs(
            work_netlist, work_annotation, target, skew_threshold=5.0
        )
        assert fixes, "expected at least one balancing buffer on the last sum bit"
        from repro.opt import input_arrival_skew

        skews = input_arrival_skew(work_netlist, work_annotation, target)
        assert max(skews.values()) - min(skews.values()) <= max(
            60.0, min(skews.values())
        )


class TestFlow:
    def test_glitch_flow_end_to_end(self):
        netlist = designs.array_multiplier(bits=4)
        delays = SyntheticDelayModel(seed=9, wire_delay_range=(0, 1)).build(netlist)
        annotation = annotation_from_design_delays(netlist, delays)
        spec = TestbenchSpec(name="mult", cycles=30, activity_factor=0.6, seed=9)
        stimulus = stimulus_for_netlist(netlist, spec, kind="random")
        flow = GlitchOptimizationFlow(
            netlist, annotation=annotation,
            config=SimConfig(clock_period=1000, cycle_parallelism=2),
        )
        outcome = flow.run(stimulus, cycles=spec.cycles, max_gates_to_fix=10)
        summary = outcome.summary()
        assert outcome.baseline_power.total_w > 0
        assert outcome.optimized_power.total_w > 0
        assert outcome.turnaround_speedup > 0
        assert summary["fixes_applied"] >= 0
        # The original netlist is untouched by the flow.
        assert "glitchfix" not in " ".join(netlist.instances)
