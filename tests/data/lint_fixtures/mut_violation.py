"""Seeded MUT001 fixture: post-construction packed-tensor mutation."""


def patch_design(design, tensors, new_flat, new_weights):
    design.tt_flat = new_flat  # MUT001: plain field assignment
    design.net_index["extra"] = 0  # MUT002 (not MUT001): in-place write, no rebind
    object.__setattr__(tensors, "weights", new_weights)  # MUT001: frozen bypass
    object.__setattr__(design, "levels", ())  # MUT001: exempt only for attr form
    return design


def unrelated(obj):
    # Names outside the packed-design field set must not fire.
    obj.table = {}
    obj.data = []
    obj.device = "numpy"  # exempt: GPU models own a 'device' attribute
