"""Seeded MUT002 fixture: in-place writes into packed-tensor rows."""


def patch_rows(design, level, tensors, rows, value):
    design.tt_flat[rows] = value  # MUT002: subscript write into shared flat
    level.tt_offsets[3] = 0  # MUT002: element write
    tensors.wire_rise[rows, :] += 1.0  # MUT002: augmented slice write
    return design


def clean_shapes(scratch, arr, model, idx):
    # Local arrays (no attribute base) never fire: the dirty-slice rebuild
    # fills freshly allocated locals before publishing them.
    scratch[idx] = 0
    arr[:] = 1.0
    # Exempt generic names stay writable through subscripts too
    # (Levelization.levels is a plain list on a non-frozen type).
    model.levels[0] = ()
    registry = {}
    registry["levels"] = ()
