"""Seeded LK001 fixture: inverted lock acquisition order.

Acquiring the serve stats lock — and worse, a session lock — while
holding the innermost compile-cache ``_LOCK`` is the deadlock shape the
lock-rank rule exists to catch.
"""

import threading

_LOCK = threading.RLock()


class BadService:
    def __init__(self):
        self._stats_lock = threading.Lock()
        self._session_lock = threading.RLock()

    def inverted(self):
        with _LOCK:  # rank 30 (innermost) taken first ...
            with self._stats_lock:  # LK001: rank 20 under rank 30
                pass

    def doubly_inverted(self):
        with self._stats_lock:  # rank 20 first ...
            with self._session_lock:  # LK001: rank 10 under rank 20
                pass

    def fine(self):
        # Rank-ascending nesting is the sanctioned order.
        with self._session_lock:
            with self._stats_lock:
                with _LOCK:
                    pass

    def nested_function_resets(self):
        with _LOCK:
            def callback():
                # Defined, not called, under the lock: no violation.
                with self._stats_lock:
                    pass

            return callback
