"""Seeded XP001 fixture: direct numpy usage in an xp-routed module.

The path mimics ``core/engine.py`` so the linter's xp-routed matcher
applies; every numpy touch below must be reported.
"""

import numpy as np  # XP001: direct import
from numpy import int64  # XP001: direct from-import


def leaky_kernel(values):
    return np.asarray(values, dtype=int64)  # XP001: use of 'np'
