#!/usr/bin/env python
"""AST-based invariant linter for the repro hot path.

The test suite proves the engine computes the right waveforms; this linter
enforces the structural invariants the hot path *relies on* but no test can
cheaply observe:

``XP001`` — numpy purity of xp-routed modules
    ``core/engine.py``, ``core/vector_kernel.py``, ``core/restructure.py``
    and ``core/memory.py`` execute on whichever array backend the config
    selects (:mod:`repro.core.xp`).  A direct ``import numpy`` / ``np.``
    call in these modules silently pins that code to the host and breaks
    torch/cupy device routing — host-side math must go through the
    sanctioned ``HOST`` backend alias (``hnp = HOST``) so the routing is
    explicit and greppable.

``LK001`` — lock acquisition order
    The stack takes its locks in a fixed order: session run locks
    (outermost), then serve bookkeeping locks, then serve stats, then the
    process-wide compile/analysis cache ``_LOCK`` (innermost leaf).
    Acquiring an outer-ranked lock while lexically holding an inner-ranked
    one is the deadlock shape PR 5 fixed; this rule keeps it from coming
    back.  Detection is lexical ``with`` nesting inside one function —
    cross-function chains are out of scope (the inner locks guard leaf
    code that must not call back out).

``MUT001`` — no mutation of packed design tensors
    :class:`~repro.core.vector_kernel.PackedDesign` / ``LevelTensors`` /
    :class:`~repro.core.register_file.RegisterFile` are built once at
    compile time and shared by every run, every shard and every cached
    session of a design fingerprint.  Any post-construction field
    assignment (including ``object.__setattr__`` bypasses of the frozen
    dataclass) is cross-session state corruption.  The register file's
    mutable run state lives in the per-run copy from
    ``RegisterFile.initial_state()``, never in the packed arrays.

``MUT002`` — packed-tensor rows mutate only via sanctioned rebuild paths
    Element/slice writes into the packed tensors (``x.tt_offsets[...] =``)
    are how the pack and the incremental dirty-slice rebuild fill freshly
    allocated arrays — but anywhere else they mutate tensors shared with
    live cached artifacts (the incremental path *shares* clean rows and
    levels by reference, so an unsanctioned in-place write corrupts every
    session holding the parent artifacts).  Only ``core/vector_kernel.py``
    (initial pack) and ``core/incremental.py`` (dirty-slice rebuild, which
    copies before patching) may subscript-assign these fields.

Usage::

    python tools/lint_invariants.py [paths...]     # default: src/repro

Exits 0 when clean, 1 when violations are found (one ``file:line: RULE``
line each), 2 on usage errors.  Stdlib-only by design: it must run in CI
and in the bare container before any dependency is importable.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

# ----------------------------------------------------------------------
# XP001: numpy purity
# ----------------------------------------------------------------------
#: Modules whose array math is routed through :mod:`repro.core.xp`.
#: Paths are relative to the ``src/repro`` package root.
XP_ROUTED_MODULES = (
    "core/engine.py",
    "core/vector_kernel.py",
    "core/restructure.py",
    "core/memory.py",
    "core/incremental.py",
    "power/activity.py",
    "waveforms/vcd.py",
)

# ----------------------------------------------------------------------
# LK001: lock ranks (lower rank = taken first / outermost)
# ----------------------------------------------------------------------
#: Attribute / module-global lock names -> rank.  A ``with`` on a lock may
#: only nest locks of strictly higher rank inside it.
LOCK_RANKS: Dict[str, int] = {
    "_run_lock": 0,       # Session.run serialization (api/session.py)
    "_session_lock": 10,  # serve session LRU (serve/service.py)
    "_group_lock": 10,    # serve batch grouping
    "_closed_lock": 10,   # serve close() latch
    "_stats_lock": 20,    # serve counters
    "_LOCK": 30,          # compile/analysis cache leaf lock (no callbacks)
    # Leaf locks of the wire/process serving layer (ISSUE 8): nothing may
    # be acquired while any of them is held, so they share the maximum
    # rank — equal ranks forbid nesting in either direction.
    "_quota_lock": 30,     # serve per-client admission quotas (service.py)
    "_conn_lock": 30,      # wire server connection registry (server.py)
    "_registry_lock": 30,  # shm live-segment registry (core/shm.py)
}

# ----------------------------------------------------------------------
# MUT001: frozen compile-time tensor containers
# ----------------------------------------------------------------------
LEVEL_TENSORS_FIELDS = frozenset(
    {
        "gate_names",
        "output_nets",
        "input_nets",
        "num_pins",
        "weights",
        "wire_rise",
        "wire_fall",
        "tt_offsets",
        "delay_offsets",
        "num_columns",
        "input_net_ids",
        "output_net_ids",
    }
)
PACKED_DESIGN_FIELDS = frozenset(
    {"tt_flat", "delay_flat", "levels", "net_index", "device"}
)
#: The register file's packed per-register arrays (core/register_file.py):
#: shared by every clocked run of a prepared session, so post-construction
#: writes corrupt concurrent and future runs exactly like PackedDesign
#: mutation would.  Run state is a per-run ``initial_state()`` copy.
REGISTER_FILE_FIELDS = frozenset(
    {
        "q_nets",
        "d_nets",
        "clock_nets",
        "enable_nets",
        "reset_nets",
        "has_enable",
        "has_reset",
        "reset_async",
        "reset_active_low",
        "reset_values",
        "init_values",
        "clk_to_q_rise",
        "clk_to_q_fall",
    }
)
FROZEN_FIELDS = (
    LEVEL_TENSORS_FIELDS | PACKED_DESIGN_FIELDS | REGISTER_FILE_FIELDS
)
#: Field names too generic to flag on plain attribute assignment — other
#: types legitimately own attributes with these names
#: (``Levelization.levels``, the GPU models' ``self.device``).  They stay
#: covered through the ``object.__setattr__`` form, which is the only way
#: to mutate the frozen dataclasses anyway.
MUT_ATTR_EXEMPT = frozenset({"levels", "device"})

# ----------------------------------------------------------------------
# MUT002: sanctioned homes of packed-tensor slice mutation
# ----------------------------------------------------------------------
#: The only modules allowed to subscript-assign into FROZEN_FIELDS arrays:
#: the initial pack (filling arrays it just allocated) and the incremental
#: dirty-slice rebuild (which ``xp.copy``-s before patching).  Paths are
#: relative to the ``src/repro`` package root.
SLICE_MUTATION_SANCTIONED = (
    "core/vector_kernel.py",
    "core/incremental.py",
)


@dataclass(frozen=True)
class Violation:
    path: Path
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


# ----------------------------------------------------------------------
# Rule implementations
# ----------------------------------------------------------------------
def _check_numpy_purity(path: Path, tree: ast.AST) -> Iterator[Violation]:
    """XP001 over one xp-routed module."""
    numpy_aliases: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                if root == "numpy":
                    yield Violation(
                        path,
                        node.lineno,
                        "XP001",
                        f"direct 'import {alias.name}' in xp-routed module; "
                        f"use the HOST backend (from .xp import HOST)",
                    )
                    numpy_aliases.add(alias.asname or root)
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".", 1)[0] == "numpy":
                yield Violation(
                    path,
                    node.lineno,
                    "XP001",
                    f"direct 'from {node.module} import ...' in xp-routed "
                    f"module; use the HOST backend (from .xp import HOST)",
                )
                numpy_aliases.update(alias.asname or alias.name for alias in node.names)
    # Flag *uses* of conventional numpy names even without a local import
    # (e.g. a module-global leaked in through a star import or a merge).
    watched = numpy_aliases | {"np", "numpy"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in watched:
                yield Violation(
                    path,
                    node.lineno,
                    "XP001",
                    f"use of numpy name {node.id!r} in xp-routed module; "
                    f"route through the config-selected backend or the "
                    f"HOST alias",
                )


def _lock_name(expr: ast.expr) -> Optional[str]:
    """The lock identity of a ``with`` context expression, if any.

    Recognizes ``self._x`` / ``cls._x`` / bare ``_LOCK`` style names and
    unwraps ``lock.acquire_timeout(...)``-style calls on them.
    """
    if isinstance(expr, ast.Call):
        return _lock_name(expr.func)
    if isinstance(expr, ast.Attribute):
        if expr.attr in LOCK_RANKS:
            return expr.attr
        return None
    if isinstance(expr, ast.Name) and expr.id in LOCK_RANKS:
        return expr.id
    return None


def _check_lock_order(path: Path, tree: ast.AST) -> Iterator[Violation]:
    """LK001: lexical ``with`` nesting must respect LOCK_RANKS."""

    violations: List[Violation] = []

    def visit(node: ast.AST, held: Tuple[Tuple[str, int], ...]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[Tuple[str, int]] = []
            for item in node.items:
                name = _lock_name(item.context_expr)
                if name is None:
                    continue
                rank = LOCK_RANKS[name]
                for held_name, held_rank in held + tuple(acquired):
                    # Equal ranks also fire: same-rank locks are peers
                    # that must be taken sequentially, never nested (and
                    # the max-rank leaf locks admit no nesting at all).
                    if rank <= held_rank:
                        violations.append(
                            Violation(
                                path,
                                item.context_expr.lineno,
                                "LK001",
                                f"acquires {name!r} (rank {rank}) while "
                                f"holding {held_name!r} (rank {held_rank}); "
                                f"lock order is rank-ascending to stay "
                                f"deadlock-free",
                            )
                        )
                acquired.append((name, rank))
            inner = held + tuple(acquired)
            for child in node.body:
                visit(child, inner)
            return
        # A nested function/lambda body does not execute under the
        # enclosing ``with`` at definition time; reset the held set.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            for child in ast.iter_child_nodes(node):
                visit(child, ())
            return
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    visit(tree, ())
    yield from violations


def _check_frozen_mutation(path: Path, tree: ast.AST) -> Iterator[Violation]:
    """MUT001: no post-construction writes to packed-tensor fields."""
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr in FROZEN_FIELDS
                and target.attr not in MUT_ATTR_EXEMPT
            ):
                yield Violation(
                    path,
                    target.lineno,
                    "MUT001",
                    f"assignment to packed-design field {target.attr!r}; "
                    f"PackedDesign/LevelTensors are compile-time immutable "
                    f"(shared across runs, shards and cached sessions) — "
                    f"build a new instance instead",
                )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "object"
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and node.args[1].value in FROZEN_FIELDS
        ):
            yield Violation(
                path,
                node.lineno,
                "MUT001",
                f"object.__setattr__ on packed-design field "
                f"{node.args[1].value!r} bypasses the frozen dataclass; "
                f"these tensors are shared across runs and must not mutate",
            )


def _check_slice_mutation(path: Path, tree: ast.AST) -> Iterator[Violation]:
    """MUT002: packed-tensor rows mutate only in sanctioned rebuild paths."""
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and target.value.attr in FROZEN_FIELDS
                and target.value.attr not in MUT_ATTR_EXEMPT
            ):
                yield Violation(
                    path,
                    target.lineno,
                    "MUT002",
                    f"in-place write into packed-design field "
                    f"{target.value.attr!r}; rows may be shared with live "
                    f"cached artifacts — only the pack "
                    f"(core/vector_kernel.py) and the dirty-slice rebuild "
                    f"(core/incremental.py) may subscript-assign these "
                    f"tensors",
                )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _is_xp_routed(path: Path) -> bool:
    posix = path.as_posix()
    return any(posix.endswith(suffix) for suffix in XP_ROUTED_MODULES)


def _is_slice_sanctioned(path: Path) -> bool:
    posix = path.as_posix()
    return any(posix.endswith(suffix) for suffix in SLICE_MUTATION_SANCTIONED)


def lint_file(path: Path) -> List[Violation]:
    """Run every applicable rule over one Python file."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError) as exc:
        return [Violation(path, getattr(exc, "lineno", 0) or 0, "PARSE", str(exc))]
    violations: List[Violation] = []
    if _is_xp_routed(path):
        violations.extend(_check_numpy_purity(path, tree))
    violations.extend(_check_lock_order(path, tree))
    violations.extend(_check_frozen_mutation(path, tree))
    if not _is_slice_sanctioned(path):
        violations.extend(_check_slice_mutation(path, tree))
    return violations


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[Path]) -> List[Violation]:
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Enforce hot-path invariants (numpy purity, lock order, "
        "packed-tensor immutability) via AST analysis.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary line"
    )
    args = parser.parse_args(argv)

    targets = [Path(p) for p in args.paths]
    missing = [p for p in targets if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    violations = lint_paths(targets)
    for violation in violations:
        print(violation.render())
    if not args.quiet:
        checked = sum(1 for _ in iter_python_files(targets))
        print(
            f"lint_invariants: {checked} file(s) checked, "
            f"{len(violations)} violation(s)"
        )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
