"""Scan vs functional power windows on a Yosys-imported scan ALU.

The paper's benchmark suite spans scan testbenches (activity factor ~1) and
functional power windows (activity of a few percent).  This example drives
both modes through the *clocked* simulation loop on the same Yosys-imported
netlist — a 4-bit accumulator ALU with a real scan chain (``$_MUX_`` scan
muxes in front of every flop, stitched ``scan_in -> ... -> scan_out``):

* **scan mode** holds ``scan_en`` high and pumps an alternating pattern
  through the chain, so every register toggles every cycle;
* **functional mode** holds ``scan_en`` low and accumulates a sparsely
  toggling operand, the "few percent activity" power window.

Both runs use ``Session.run_cycles`` — registers advance through their real
next-state functions, so the activity (and therefore the power) comes from
simulated sequential behavior rather than from source-net state modelling.
The scan window must come out strictly more power-hungry than the
functional window; the script asserts that ordering.

Run with:  python examples/scan_vs_functional_power.py
"""

from repro.api import get_backend
from repro.core import SimConfig
from repro.core.waveform import Waveform
from repro.gpu import ApplicationModel, KernelPerfModel, KernelWorkload, V100
from repro.netlist import load_fixture
from repro.power import PowerModel, summarize_activity

CLOCK_PERIOD = 1000


def scan_stimulus(cycles):
    """scan_en high, alternating pattern pumped into the chain every cycle."""
    period = CLOCK_PERIOD
    return {
        "rst_n": Waveform.constant(1),
        "scan_en": Waveform.constant(1),
        "scan_in": Waveform.from_toggle_array(
            0, [k * period + period // 4 for k in range(1, cycles)]
        ),
        "b[0]": Waveform.constant(0),
        "b[1]": Waveform.constant(0),
        "b[2]": Waveform.constant(0),
        "b[3]": Waveform.constant(0),
    }


def functional_stimulus(cycles):
    """scan_en low; operand b pulses to 1 for one cycle every eighth cycle."""
    period = CLOCK_PERIOD
    toggles = []
    for k in range(0, cycles, 8):
        toggles.append(k * period + period // 4)
        toggles.append((k + 1) * period + period // 4)
    return {
        "rst_n": Waveform.constant(1),
        "scan_en": Waveform.constant(0),
        "scan_in": Waveform.constant(0),
        "b[0]": Waveform.from_toggle_array(0, toggles),
        "b[1]": Waveform.constant(0),
        "b[2]": Waveform.constant(0),
        "b[3]": Waveform.constant(0),
    }


def run_window(netlist, kind, stimulus, cycles, backend="gatspi"):
    config = SimConfig(clock_period=CLOCK_PERIOD, store_waveforms=True)
    session = get_backend(backend).prepare(netlist, config=config)
    return session.run_cycles(stimulus, cycles)


def main() -> None:
    netlist = load_fixture("alu")
    power_model = PowerModel(netlist)
    kernel_model = KernelPerfModel(V100)
    app_model = ApplicationModel(V100)

    print(f"design: {netlist.name} (Yosys import), {netlist.gate_count} gates, "
          f"{netlist.sequential_count} flops\n")
    powers = {}
    cycles = 64
    for kind, stimulus in (("scan", scan_stimulus(cycles)),
                           ("functional", functional_stimulus(cycles))):
        result = run_window(netlist, kind, stimulus, cycles)
        summary = summarize_activity(netlist, result, cycles)
        power = power_model.compute_from_result(result)
        powers[kind] = power.total_w
        workload = KernelWorkload.from_result(netlist, result,
                                              design=f"scan_alu/{kind}")
        source_events = sum(result.toggle_counts.get(n, 0)
                            for n in netlist.source_nets())
        speedup = kernel_model.kernel_speedup(workload)
        app_speedup = app_model.application_speedup(
            workload, source_events=source_events, net_count=len(netlist.nets)
        )
        print(f"[{kind}] cycles={cycles} activity factor={summary.activity_factor:.3f}")
        print(f"  total power: {power.total_w * 1e3:.3f} mW "
              f"(dynamic {power.dynamic_w * 1e3:.3f} mW)")
        print(f"  measured Python kernel time: {result.kernel_runtime:.2f} s")
        print(f"  modelled V100 kernel speedup vs 1 CPU core: {speedup:.0f}X, "
              f"application speedup: {app_speedup:.0f}X\n")

    ratio = powers["scan"] / powers["functional"]
    assert powers["scan"] > powers["functional"], (
        f"scan-mode power ({powers['scan']:.3e} W) should exceed "
        f"functional-mode power ({powers['functional']:.3e} W)"
    )
    print(f"scan / functional power ratio: {ratio:.2f}x (scan dominates, "
          "as in the paper's testbench suite)")


if __name__ == "__main__":
    main()
