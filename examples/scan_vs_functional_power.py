"""Scan vs functional power windows on an NVDLA-like MAC block.

The paper's benchmark suite spans scan testbenches (activity factor ~1) and
functional power windows (activity of a few percent).  This example runs both
on the same design, compares activity factors, kernel workloads, and the
resulting power, and prints the modelled V100 speedups for each — showing the
paper's observation that long, high-activity testbenches benefit most from
GPU acceleration.

Run with:  python examples/scan_vs_functional_power.py
"""

from repro.api import get_backend
from repro.bench.designs import nvdla_like_mac_block
from repro.core import SimConfig
from repro.gpu import ApplicationModel, KernelPerfModel, KernelWorkload, V100
from repro.power import PowerModel, summarize_activity
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.waveforms import TestbenchSpec, stimulus_for_netlist


def run_window(netlist, annotation, kind, cycles, activity, seed,
               backend="gatspi"):
    spec = TestbenchSpec(name=kind, cycles=cycles, activity_factor=activity,
                         seed=seed)
    stimulus = stimulus_for_netlist(netlist, spec, kind=kind)
    config = SimConfig(cycle_parallelism=8, clock_period=spec.clock_period)
    session = get_backend(backend).prepare(netlist, annotation=annotation,
                                           config=config)
    result = session.run(stimulus, cycles=cycles)
    return spec, result


def main() -> None:
    netlist = nvdla_like_mac_block(macs=4, data_bits=4)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=3).build(netlist)
    )
    power_model = PowerModel(netlist)
    kernel_model = KernelPerfModel(V100)
    app_model = ApplicationModel(V100)

    print(f"design: {netlist.name}, {netlist.gate_count} gates, "
          f"{netlist.sequential_count} flops\n")
    for kind, cycles, activity in (("scan", 40, 1.0), ("functional", 200, 0.05)):
        spec, result = run_window(netlist, annotation, kind, cycles, activity,
                                  seed=3)
        summary = summarize_activity(netlist, result, cycles)
        power = power_model.compute_from_result(result)
        workload = KernelWorkload.from_result(netlist, result,
                                              design=f"nvdla/{kind}")
        source_events = sum(result.toggle_counts.get(n, 0)
                            for n in netlist.source_nets())
        speedup = kernel_model.kernel_speedup(workload)
        app_speedup = app_model.application_speedup(
            workload, source_events=source_events, net_count=len(netlist.nets)
        )
        print(f"[{kind}] cycles={cycles} activity factor={summary.activity_factor:.3f}")
        print(f"  total power: {power.total_w * 1e3:.3f} mW "
              f"(dynamic {power.dynamic_w * 1e3:.3f} mW)")
        print(f"  measured Python kernel time: {result.kernel_runtime:.2f} s")
        print(f"  modelled V100 kernel speedup vs 1 CPU core: {speedup:.0f}X, "
              f"application speedup: {app_speedup:.0f}X\n")


if __name__ == "__main__":
    main()
