"""Glitch-power optimization flow on a glitch-heavy multiplier.

Reproduces the paper's Section 4 deployment experiment at laptop scale:
re-simulate with GATSPI, analyze glitch power, apply path-balancing fixes,
re-simulate to confirm the saving, and compare the turnaround time against
the event-driven baseline flow.

Run with:  python examples/glitch_optimization.py
"""

from repro.bench.designs import array_multiplier
from repro.core import SimConfig
from repro.opt import GlitchOptimizationFlow
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.waveforms import TestbenchSpec, stimulus_for_netlist


def main() -> None:
    netlist = array_multiplier(bits=6)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=7, wire_delay_range=(0, 1)).build(netlist)
    )
    spec = TestbenchSpec(name="power_window", cycles=40, activity_factor=0.6, seed=7)
    stimulus = stimulus_for_netlist(netlist, spec, kind="random")

    # All three simulation roles are named repro.api backends; swapping any
    # engine in the flow is a string change.
    flow = GlitchOptimizationFlow(
        netlist, annotation=annotation,
        config=SimConfig(clock_period=1000, cycle_parallelism=4),
        backend="gatspi", functional_backend="zero-delay",
        baseline_backend="event",
    )
    outcome = flow.run(stimulus, cycles=spec.cycles, max_gates_to_fix=25,
                       skew_threshold=4.0)

    baseline = outcome.baseline_glitch
    print(f"design: {netlist.name}, {netlist.gate_count} gates")
    print(f"glitch toggles before fixing: {baseline.total_glitch_toggles} "
          f"({baseline.glitch_toggle_fraction * 100:.1f}% of all toggles)")
    print(f"glitch power fraction: {baseline.glitch_power_fraction * 100:.2f}%")
    print("worst glitching nets:")
    for info in baseline.worst_nets(5):
        print(f"  {info.net:20s} glitch toggles {info.glitch_toggles:5d} "
              f"glitch power {info.glitch_power_w * 1e6:.2f} uW")

    print(f"\napplied {len(outcome.fixes)} path-balancing buffers")
    print(f"power before: {outcome.baseline_power.total_w * 1e3:.3f} mW")
    print(f"power after:  {outcome.optimized_power.total_w * 1e3:.3f} mW")
    print(f"power saving: {outcome.power_saving_fraction * 100:.2f}% "
          f"(paper reports 1.4% on its industrial design)")
    print(f"glitch toggles removed: {outcome.glitch_toggle_reduction}")
    print(f"re-simulation turnaround: GATSPI {outcome.gatspi_resim_seconds:.2f}s vs "
          f"reference {outcome.reference_resim_seconds:.2f}s "
          f"({outcome.turnaround_speedup:.1f}X)")


if __name__ == "__main__":
    main()
