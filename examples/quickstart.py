"""Quickstart: re-simulate a small netlist and write a SAIF file.

Builds an 8-bit ripple-carry adder, annotates it with synthetic SDF-style
delays, generates a random testbench, runs the GATSPI engine, verifies the
result against the event-driven reference simulator, and writes the SAIF
file a power tool would consume.

Run with:  python examples/quickstart.py
"""

from repro.api import get_backend
from repro.bench.designs import ripple_carry_adder
from repro.core import SimConfig
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays, write_sdf
from repro.waveforms import TestbenchSpec, saif_from_result, stimulus_for_netlist


def main() -> None:
    # 1. The design: an 8-bit adder built from library cells.
    netlist = ripple_carry_adder(bits=8)
    print(f"design: {netlist.name}, {netlist.gate_count} gates")

    # 2. Delay annotation (what the SDF file would provide).
    delays = SyntheticDelayModel(seed=1).build(netlist)
    annotation = annotation_from_design_delays(netlist, delays)
    print(f"SDF arcs: {delays.arc_count()} "
          f"({delays.conditional_arc_count()} conditional)")
    print("first lines of the equivalent SDF file:")
    print("\n".join(write_sdf(netlist, delays).splitlines()[:8]))

    # 3. The testbench: random stimulus on every source net.
    spec = TestbenchSpec(name="random", cycles=100, activity_factor=1.0, seed=1)
    stimulus = stimulus_for_netlist(netlist, spec, kind="random")

    # 4. GATSPI re-simulation through the unified backend registry.
    config = SimConfig(cycle_parallelism=8, clock_period=spec.clock_period)
    session = get_backend("gatspi").prepare(netlist, annotation=annotation,
                                            config=config)
    result = session.run(stimulus, cycles=spec.cycles)
    print(f"activity factor: {result.activity_factor():.3f}, "
          f"total toggles: {result.total_toggles()}")
    print(f"kernel runtime: {result.kernel_runtime * 1e3:.1f} ms, "
          f"application runtime: {result.application_runtime * 1e3:.1f} ms")

    # 5. Accuracy check against the event-driven reference (the paper's
    #    commercial-simulator comparison) — same call, different backend.
    reference = get_backend("event").prepare(
        netlist, annotation=annotation, config=config
    ).run(stimulus, cycles=spec.cycles)
    assert result.matches_toggle_counts(reference), "SAIF mismatch!"
    print("SAIF toggle counts match the event-driven reference exactly")

    # 6. The deliverable: a SAIF file for downstream power analysis.
    saif_text = saif_from_result(result, design=netlist.name)
    print("first lines of the SAIF file:")
    print("\n".join(saif_text.splitlines()[:12]))


if __name__ == "__main__":
    main()
