"""Multi-GPU cycle-parallel scaling (paper Fig. 6) on a generated design.

Distributes one testbench across 1, 2, 4, and 8 model devices using the
paper's cycle-parallelism workload-distribution strategy, reports measured
per-device kernel times and load imbalance, and prints the modelled
paper-scale scaling curve `t = t1/n + ovr`.

Run with:  python examples/multi_gpu_scaling.py
"""

from repro.api import get_backend
from repro.bench.designs import industry_like
from repro.core import SimConfig, simulate_multi_gpu
from repro.gpu import KernelWorkload, MultiGpuModel, V100
from repro.sdf import SyntheticDelayModel, annotation_from_design_delays
from repro.waveforms import TestbenchSpec, stimulus_for_netlist


def main() -> None:
    netlist = industry_like(gate_count=600, num_flops=80, depth=14, seed=5)
    annotation = annotation_from_design_delays(
        netlist, SyntheticDelayModel(seed=5).build(netlist)
    )
    spec = TestbenchSpec(name="concat", cycles=80, activity_factor=0.15, seed=5)
    stimulus = stimulus_for_netlist(netlist, spec, kind="functional")
    config = SimConfig(cycle_parallelism=8, clock_period=spec.clock_period)

    print(f"design: {netlist.gate_count} gates, testbench {spec.cycles} cycles\n")
    print("measured cycle-parallel distribution across model devices:")
    baseline = None
    for devices in (1, 2, 4, 8):
        result = simulate_multi_gpu(
            netlist, stimulus, spec.cycles, num_devices=devices,
            annotation=annotation, config=config, backend="gatspi",
        )
        parallel = result.parallel_kernel_runtime
        if baseline is None:
            baseline = parallel
        print(f"  {devices} device(s): kernel {parallel:.2f}s  "
              f"speedup {baseline / parallel:4.1f}X  "
              f"imbalance {result.load_imbalance():.2f}")

    # Modelled paper-scale curve for the same workload shape.
    session = get_backend("gatspi").prepare(netlist, annotation=annotation,
                                            config=config)
    result = session.run(stimulus, cycles=spec.cycles)
    workload = KernelWorkload.from_result(netlist, result)
    print("\nmodelled V100 scaling (t = t1/n + overhead):")
    for point in MultiGpuModel(V100).scaling_curve(workload, [1, 2, 4, 8]):
        print(f"  {point.label}: {point.kernel_seconds * 1e3:.2f} ms, "
              f"{point.speedup_vs_cpu:.0f}X vs 1 CPU core")


if __name__ == "__main__":
    main()
